#ifndef SIEVE_SIEVE_GUARD_SELECTION_H_
#define SIEVE_SIEVE_GUARD_SELECTION_H_

#include <vector>

#include "engine/database.h"
#include "policy/policy_store.h"
#include "sieve/candidate_guards.h"
#include "sieve/cost_model.h"
#include "sieve/guard.h"

namespace sieve {

/// Greedy weighted-set-cover selection of guards (Algorithm 1): candidates
/// are ranked by utility = benefit / read_cost; the top candidate is taken,
/// its policies are removed from all other candidates, utilities are
/// recomputed, and the loop repeats until every policy is covered exactly
/// once.
///
/// Threading: const and stateless — safe to call concurrently; runs at
/// guard-generation time, never on the query execution path.
class GuardSelector {
 public:
  explicit GuardSelector(const CostModel* cost) : cost_(cost) {}

  /// Selects a cover from `candidates` for a table with `table_rows` rows.
  /// Each returned guard's partition is disjoint from every other's, and the
  /// union of partitions equals the union of candidate policy sets.
  std::vector<CandidateGuard> Select(std::vector<CandidateGuard> candidates,
                                     double table_rows) const;

 private:
  const CostModel* cost_;
};

/// One-stop guard generation for a (querier, purpose, table) key:
/// metadata filter -> candidate generation -> Algorithm 1 selection ->
/// inline-vs-Δ choice per guard. This is the routine whose latency Figure 2
/// reports.
///
/// Threading: Build is logically const but must not run concurrently with
/// DDL/DML on `db` (it reads index histograms); the rewriter invokes it
/// single-threaded before execution starts.
class GuardedExpressionBuilder {
 public:
  GuardedExpressionBuilder(Database* db, const PolicyStore* policies,
                           const CostModel* cost,
                           const GroupResolver* resolver)
      : db_(db), policies_(policies), cost_(cost), resolver_(resolver) {}

  /// Builds G(P_QM) for the given metadata and table.
  Result<GuardedExpression> Build(const QueryMetadata& md,
                                  const std::string& table) const;

  /// Builds G(P) from an explicit policy list (used by benches that sweep
  /// policy-set sizes).
  Result<GuardedExpression> BuildFromPolicies(
      const std::vector<const Policy*>& policies, const QueryMetadata& md,
      const std::string& table) const;

 private:
  Database* db_;
  const PolicyStore* policies_;
  const CostModel* cost_;
  const GroupResolver* resolver_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_GUARD_SELECTION_H_
