#include "sieve/audit_log.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "sieve/rewriter.h"

namespace sieve {

namespace {

std::string JoinIds(const std::vector<int64_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  return out;
}

void AppendJoined(std::string* dst, const std::string& piece) {
  if (piece.empty()) return;
  if (!dst->empty()) *dst += ",";
  *dst += piece;
}

}  // namespace

const char* AuditCacheStateName(AuditCacheState s) {
  switch (s) {
    case AuditCacheState::kMiss:
      return "miss";
    case AuditCacheState::kHit:
      return "hit";
    case AuditCacheState::kRefresh:
      return "refresh";
  }
  return "?";
}

Status AuditLog::Init() {
  if (db_->catalog().Find(kTableName) != nullptr) return Status::OK();
  Schema schema({{"seq", DataType::kInt},
                 {"querier", DataType::kString},
                 {"purpose", DataType::kString},
                 {"sql", DataType::kString},
                 {"tables", DataType::kString},
                 {"policies", DataType::kString},
                 {"guards", DataType::kString},
                 {"n_policies", DataType::kInt},
                 {"n_guards", DataType::kInt},
                 {"n_delta_guards", DataType::kInt},
                 {"strategies", DataType::kString},
                 {"cache", DataType::kString},
                 {"denied", DataType::kInt},
                 {"rows_out", DataType::kInt},
                 {"comparisons", DataType::kInt},
                 {"policy_evals", DataType::kInt}});
  SIEVE_RETURN_IF_ERROR(db_->CreateTable(kTableName, std::move(schema)));
  SIEVE_RETURN_IF_ERROR(db_->CreateIndex(kTableName, "seq"));
  return db_->CreateIndex(kTableName, "querier");
}

AuditRecord AuditLog::MakeRecord(const QueryMetadata& md,
                                 const PreparedRewrite& rewrite,
                                 AuditCacheState cache,
                                 const ExecStats& stats) {
  AuditRecord r;
  r.querier = md.querier;
  r.purpose = md.purpose;
  r.sql = rewrite.normalized_sql;
  r.cache = cache;
  r.default_denied = rewrite.default_denied;
  for (const TableRewriteInfo& info : rewrite.tables) {
    AppendJoined(&r.tables, info.table);
    AppendJoined(&r.policy_ids, JoinIds(info.policy_ids));
    AppendJoined(&r.guard_ids, JoinIds(info.guard_ids));
    AppendJoined(&r.strategies, AccessStrategyName(info.strategy));
    r.num_policies += static_cast<int64_t>(info.num_policies);
    r.num_guards += static_cast<int64_t>(info.num_guards);
    r.num_delta_guards += static_cast<int64_t>(info.num_delta_guards);
  }
  r.rows_out = static_cast<int64_t>(stats.rows_output);
  r.comparisons = static_cast<int64_t>(stats.comparisons);
  r.policy_evals = static_cast<int64_t>(stats.policy_evals);
  return r;
}

int64_t AuditLog::Append(AuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  if (pending_.size() >= capacity_) {
    pending_.pop_front();
    ++dropped_;
  }
  pending_.push_back(std::move(record));
  return pending_.back().seq;
}

Status AuditLog::Flush() {
  std::deque<AuditRecord> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(pending_);
  }
  Status failure = Status::OK();
  size_t inserted_count = 0;
  if (SIEVE_FAULT_POINT("mw.audit_flush.fail")) {
    failure = SIEVE_INJECT_FAULT("mw.audit_flush.fail");
  }
  for (const AuditRecord& r : drained) {
    if (!failure.ok()) break;
    Row row{Value::Int(r.seq),
            Value::String(r.querier),
            Value::String(r.purpose),
            Value::String(r.sql),
            Value::String(r.tables),
            Value::String(r.policy_ids),
            Value::String(r.guard_ids),
            Value::Int(r.num_policies),
            Value::Int(r.num_guards),
            Value::Int(r.num_delta_guards),
            Value::String(r.strategies),
            Value::String(AuditCacheStateName(r.cache)),
            Value::Int(r.default_denied ? 1 : 0),
            Value::Int(r.rows_out),
            Value::Int(r.comparisons),
            Value::Int(r.policy_evals)};
    auto inserted = db_->Insert(kTableName, std::move(row));
    if (!inserted.ok()) {
      failure = inserted.status();
      break;
    }
    ++inserted_count;
  }
  if (!failure.ok()) {
    // The drained-but-not-inserted tail is lost; count it so the failure
    // is visible beyond this one return value.
    std::lock_guard<std::mutex> lock(mu_);
    unflushed_ += drained.size() - inserted_count;
    return failure;
  }
  return EnforceRetention();
}

Status AuditLog::EnforceRetention() {
  size_t max_rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_rows = max_table_rows_;
  }
  if (max_rows == 0) return Status::OK();
  TableEntry* entry = db_->catalog().Find(kTableName);
  if (entry == nullptr) return Status::OK();
  const Table& table = *entry->table;
  if (table.size() <= max_rows) return Status::OK();

  // Oldest-first: records are flushed in seq order and rows are append-
  // only, so live RowIds ascend with seq — the first (size - max) live
  // rows are exactly the oldest ones.
  size_t to_delete = table.size() - max_rows;
  std::vector<RowId> victims;
  victims.reserve(to_delete);
  table.ForEach([&](RowId id, const Row&) {
    if (victims.size() < to_delete) victims.push_back(id);
  });
  for (RowId id : victims) {
    SIEVE_RETURN_IF_ERROR(db_->Delete(kTableName, id));
  }
  std::lock_guard<std::mutex> lock(mu_);
  truncated_ += victims.size();
  return Status::OK();
}

void AuditLog::set_max_table_rows(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_table_rows_ = n;
}

size_t AuditLog::max_table_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_table_rows_;
}

uint64_t AuditLog::truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_;
}

size_t AuditLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

uint64_t AuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t AuditLog::unflushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unflushed_;
}

int64_t AuditLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

std::vector<AuditRecord> AuditLog::PendingTail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = std::min(n, pending_.size());
  return std::vector<AuditRecord>(pending_.end() - static_cast<long>(count),
                                  pending_.end());
}

}  // namespace sieve
