#ifndef SIEVE_SIEVE_CANDIDATE_GUARDS_H_
#define SIEVE_SIEVE_CANDIDATE_GUARDS_H_

#include <vector>

#include "engine/database.h"
#include "policy/policy.h"
#include "sieve/cost_model.h"
#include "sieve/guard.h"

namespace sieve {

/// Generates the candidate guard set CG for a policy set (Section 4.1):
///   1. every object condition on an indexed attribute with a constant value
///      becomes a candidate (oc_owner guarantees at least one per policy);
///   2. candidates with identical intervals on the same attribute are
///      coalesced (their policy partitions merge);
///   3. overlapping range candidates on the same attribute are merged when
///      Theorem 1's benefit test ρ(x∩y)/ρ(x∪y) > ce/(cr+ce) passes, sweeping
///      candidates in ascending left-endpoint order and stopping per
///      Corollaries 1.1/1.2.
///
/// Threading: const and stateless — safe to call concurrently; runs at
/// guard-generation time, never on the query execution path.
class CandidateGuardGenerator {
 public:
  CandidateGuardGenerator(const Database* db, const CostModel* cost)
      : db_(db), cost_(cost) {}

  /// Candidates for `policies` (all defined on `table`). Policies without
  /// any indexable condition are skipped (the paper's model guarantees the
  /// indexed oc_owner, so this does not occur for well-formed corpora).
  std::vector<CandidateGuard> Generate(
      const std::vector<const Policy*>& policies,
      const std::string& table) const;

  /// Theorem 1 benefit test for merging two overlapping interval candidates
  /// on the same indexed attribute. Exposed for tests.
  bool MergeBeneficial(const CandidateGuard& x, const CandidateGuard& y,
                       const Index& index) const;

 private:
  const Database* db_;
  const CostModel* cost_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_CANDIDATE_GUARDS_H_
