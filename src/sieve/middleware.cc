#include "sieve/middleware.h"

#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"
#include "parser/parser.h"
#include "sieve/delta.h"
#include "sieve/session.h"

namespace sieve {

SieveMiddleware::~SieveMiddleware() {
  // No sessions may be live at destruction, so the gate is uncontended;
  // a failed flush has nowhere to report — the records count as unflushed
  // for whatever outlives the log (nothing does, but the attempt is what
  // keeps the normal shutdown path lossless).
  if (audit_log_.pending() > 0) {
    [[maybe_unused]] Status flushed = FlushAuditLog();
  }
}

void SieveMiddleware::RegisterInvalidationListeners() {
  // Both listeners fire synchronously inside store mutations — normally
  // under this middleware's exclusive state_mu_, but also from direct store
  // calls in tests and benches. RewriteCache has its own leaf mutex and
  // never calls back into the stores, so there is no lock cycle.
  policies_.set_mutation_listener([this](const PolicyMutationEvent& e) {
    if (e.wholesale) {
      rewrite_cache_.InvalidateAll();
      return;
    }
    if (e.protection_changed) {
      // First policy added to / last removed from the table: the table
      // flipped between unprotected and protected, which changes the
      // rewrite of every querier touching it.
      rewrite_cache_.InvalidateTable(e.table);
      return;
    }
    // The grant reaches a cached rewrite iff it would be among the
    // rewrite's relevant policies — same semantics as rewrite-time
    // filtering (purpose match or "any", querier direct or via group).
    rewrite_cache_.InvalidateTable(e.table, [&](const PreparedRewrite& rw) {
      return GrantMatchesMetadata(e.querier, e.purpose,
                                  QueryMetadata{rw.querier, rw.purpose},
                                  resolver_);
    });
  });
  guards_.set_mutation_listener([this](const GuardMutationEvent& e) {
    // A guarded expression belongs to one concrete (querier, purpose) pair
    // — only that pair's cached rewrites depend on it. Both sides are
    // lower-cased at the source.
    rewrite_cache_.InvalidateTable(e.table, [&](const PreparedRewrite& rw) {
      return rw.querier == e.querier && rw.purpose == e.purpose;
    });
  });
}

Status SieveMiddleware::Init() {
  SIEVE_RETURN_IF_ERROR(policies_.Init());
  SIEVE_RETURN_IF_ERROR(guards_.Init());
  SIEVE_RETURN_IF_ERROR(audit_log_.Init());
  if (!db_->udfs().Contains(kDeltaUdfName)) {
    SIEVE_RETURN_IF_ERROR(RegisterDeltaUdf(db_, &guards_));
  }
  if (options_.calibrate_cost_model) {
    SIEVE_ASSIGN_OR_RETURN(CostParams params, CostModel::Calibrate(db_));
    cost_.set_params(params);
  }
  dynamics_.set_mode(options_.regeneration_mode);
  return Status::OK();
}

Result<int64_t> SieveMiddleware::AddPolicy(Policy policy) {
  // Exclusive: waits for in-flight executions/cursors, then mutates the
  // stores. The mutation listeners fire inside InsertPolicy and mark stale
  // exactly the cached rewrites whose dependency keys the insert touches.
  std::unique_lock<SharedGate> lock(state_mu_);
  return dynamics_.InsertPolicy(std::move(policy));
}

Status SieveMiddleware::set_options(const SieveOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument(
        StrFormat("num_threads must be >= 1, got %d", options.num_threads));
  }
  if (options.timeout_seconds < 0.0) {
    return Status::InvalidArgument(
        StrFormat("timeout_seconds must be >= 0, got %g",
                  options.timeout_seconds));
  }
  if (options.batch_size < 0) {
    return Status::InvalidArgument(
        StrFormat("batch_size must be >= 0 (0 = adaptive), got %d",
                  options.batch_size));
  }
  if (options.audit_max_rows < 0) {
    return Status::InvalidArgument(
        StrFormat("audit_max_rows must be >= 0 (0 = unbounded), got %lld",
                  static_cast<long long>(options.audit_max_rows)));
  }
  std::unique_lock<SharedGate> lock(state_mu_);
  options_ = options;
  dynamics_.set_mode(options.regeneration_mode);
  audit_log_.set_max_table_rows(static_cast<size_t>(options.audit_max_rows));
  return Status::OK();
}

bool SieveMiddleware::IsKnownSubject(const QueryMetadata& md) const {
  // Shared: only reads the corpus, but must not observe a torn mutation.
  std::shared_lock<SharedGate> lock(state_mu_);
  for (const Policy& p : policies_.policies()) {
    if (GrantMatchesMetadata(p.querier, p.purpose, md, resolver_)) return true;
  }
  return false;
}

Status SieveMiddleware::FlushAuditLog() {
  // Exclusive: Flush inserts into the sieve_audit engine table, which must
  // not interleave with executions scanning it (same contract as policy
  // catalog mutations).
  std::unique_lock<SharedGate> lock(state_mu_);
  return audit_log_.Flush();
}

Result<RewriteResult> SieveMiddleware::Rewrite(const std::string& sql,
                                               const QueryMetadata& md) {
  // Exclusive: rewriting may regenerate outdated guards (a GuardStore
  // mutation), which must not run concurrently with executions reading
  // guard state through the Δ UDF.
  std::unique_lock<SharedGate> lock(state_mu_);
  return rewriter_.RewriteSql(sql, md);
}

Result<ResultSet> SieveMiddleware::Execute(const std::string& sql,
                                           const QueryMetadata& md) {
  SieveSession session(this, md);
  return session.Execute(sql);
}

Result<ResultSet> SieveMiddleware::ExecuteReference(const std::string& sql,
                                                    const QueryMetadata& md) {
  // Shared: the reference rewrite only reads the policy corpus, and the
  // execution must not interleave with policy mutations (same consistency
  // contract as the Sieve path, so differential tests compare like with
  // like). Intentionally skips dynamics_.ObserveQuery(): the oracle must
  // not perturb the r_pq bookkeeping of the workload under test.
  std::shared_lock<SharedGate> lock(state_mu_);
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  SelectStmtPtr rewritten = stmt->Clone();

  // Collect protected tables referenced by the query.
  std::vector<std::string> tables;
  for (const SelectStmt* arm = rewritten.get(); arm != nullptr;
       arm = arm->union_next.get()) {
    for (const auto& ref : arm->from) {
      if (ref.subquery != nullptr) continue;
      bool has_policy = false;
      for (const Policy& p : policies_.policies()) {
        if (EqualsIgnoreCase(p.table_name, ref.table_name)) {
          has_policy = true;
          break;
        }
      }
      if (!has_policy) continue;
      bool seen = false;
      for (const auto& t : tables) {
        if (EqualsIgnoreCase(t, ref.table_name)) seen = true;
      }
      if (!seen) tables.push_back(ref.table_name);
    }
  }

  for (const std::string& table : tables) {
    std::vector<const Policy*> relevant =
        policies_.FilterByMetadata(md, table, resolver_);
    auto cte_body = std::make_shared<SelectStmt>();
    cte_body->select_star = true;
    TableRef base;
    base.table_name = table;
    cte_body->from.push_back(base);
    if (relevant.empty()) {
      cte_body->where = MakeLiteral(Value::Bool(false));
    } else {
      std::vector<ExprPtr> policy_exprs;
      policy_exprs.reserve(relevant.size());
      for (const Policy* p : relevant) policy_exprs.push_back(p->ObjectExpr());
      cte_body->where = MakeOr(std::move(policy_exprs));
    }
    std::string cte_name = "sieve_ref_" + ToLower(table);
    rewritten->ctes.push_back({cte_name, cte_body});
    for (SelectStmt* arm = rewritten.get(); arm != nullptr;
         arm = arm->union_next.get()) {
      for (auto& ref : arm->from) {
        if (ref.subquery == nullptr &&
            EqualsIgnoreCase(ref.table_name, table)) {
          if (ref.alias.empty()) ref.alias = ref.table_name;
          ref.table_name = cte_name;
          ref.hint = IndexHint{};
        }
      }
    }
  }
  return db_->ExecuteStmt(*rewritten, &md, options_.timeout_seconds,
                          options_.num_threads, options_.batch_size);
}

}  // namespace sieve
