#include "sieve/middleware.h"

#include <mutex>

#include "common/string_util.h"
#include "parser/parser.h"
#include "sieve/delta.h"
#include "sieve/session.h"

namespace sieve {

Status SieveMiddleware::Init() {
  SIEVE_RETURN_IF_ERROR(policies_.Init());
  SIEVE_RETURN_IF_ERROR(guards_.Init());
  if (!db_->udfs().Contains(kDeltaUdfName)) {
    SIEVE_RETURN_IF_ERROR(RegisterDeltaUdf(db_, &guards_));
  }
  if (options_.calibrate_cost_model) {
    SIEVE_ASSIGN_OR_RETURN(CostParams params, CostModel::Calibrate(db_));
    cost_.set_params(params);
  }
  dynamics_.set_mode(options_.regeneration_mode);
  return Status::OK();
}

Result<int64_t> SieveMiddleware::AddPolicy(Policy policy) {
  // Exclusive: waits for in-flight executions/cursors, then mutates the
  // stores. The store version bumps inside InsertPolicy advance the policy
  // epoch, which invalidates every cached rewrite wholesale.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return dynamics_.InsertPolicy(std::move(policy));
}

Status SieveMiddleware::set_options(const SieveOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument(
        StrFormat("num_threads must be >= 1, got %d", options.num_threads));
  }
  if (options.timeout_seconds < 0.0) {
    return Status::InvalidArgument(
        StrFormat("timeout_seconds must be >= 0, got %g",
                  options.timeout_seconds));
  }
  if (options.batch_size < 0) {
    return Status::InvalidArgument(
        StrFormat("batch_size must be >= 0 (0 = adaptive), got %d",
                  options.batch_size));
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  options_ = options;
  dynamics_.set_mode(options.regeneration_mode);
  return Status::OK();
}

Result<RewriteResult> SieveMiddleware::Rewrite(const std::string& sql,
                                               const QueryMetadata& md) {
  // Exclusive: rewriting may regenerate outdated guards (a GuardStore
  // mutation), which must not run concurrently with executions reading
  // guard state through the Δ UDF.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return rewriter_.RewriteSql(sql, md);
}

Result<ResultSet> SieveMiddleware::Execute(const std::string& sql,
                                           const QueryMetadata& md) {
  SieveSession session(this, md);
  return session.Execute(sql);
}

Result<ResultSet> SieveMiddleware::ExecuteReference(const std::string& sql,
                                                    const QueryMetadata& md) {
  // Shared: the reference rewrite only reads the policy corpus, and the
  // execution must not interleave with policy mutations (same consistency
  // contract as the Sieve path, so differential tests compare like with
  // like). Intentionally skips dynamics_.ObserveQuery(): the oracle must
  // not perturb the r_pq bookkeeping of the workload under test.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  SelectStmtPtr rewritten = stmt->Clone();

  // Collect protected tables referenced by the query.
  std::vector<std::string> tables;
  for (const SelectStmt* arm = rewritten.get(); arm != nullptr;
       arm = arm->union_next.get()) {
    for (const auto& ref : arm->from) {
      if (ref.subquery != nullptr) continue;
      bool has_policy = false;
      for (const Policy& p : policies_.policies()) {
        if (EqualsIgnoreCase(p.table_name, ref.table_name)) {
          has_policy = true;
          break;
        }
      }
      if (!has_policy) continue;
      bool seen = false;
      for (const auto& t : tables) {
        if (EqualsIgnoreCase(t, ref.table_name)) seen = true;
      }
      if (!seen) tables.push_back(ref.table_name);
    }
  }

  for (const std::string& table : tables) {
    std::vector<const Policy*> relevant =
        policies_.FilterByMetadata(md, table, resolver_);
    auto cte_body = std::make_shared<SelectStmt>();
    cte_body->select_star = true;
    TableRef base;
    base.table_name = table;
    cte_body->from.push_back(base);
    if (relevant.empty()) {
      cte_body->where = MakeLiteral(Value::Bool(false));
    } else {
      std::vector<ExprPtr> policy_exprs;
      policy_exprs.reserve(relevant.size());
      for (const Policy* p : relevant) policy_exprs.push_back(p->ObjectExpr());
      cte_body->where = MakeOr(std::move(policy_exprs));
    }
    std::string cte_name = "sieve_ref_" + ToLower(table);
    rewritten->ctes.push_back({cte_name, cte_body});
    for (SelectStmt* arm = rewritten.get(); arm != nullptr;
         arm = arm->union_next.get()) {
      for (auto& ref : arm->from) {
        if (ref.subquery == nullptr &&
            EqualsIgnoreCase(ref.table_name, table)) {
          if (ref.alias.empty()) ref.alias = ref.table_name;
          ref.table_name = cte_name;
          ref.hint = IndexHint{};
        }
      }
    }
  }
  return db_->ExecuteStmt(*rewritten, &md, options_.timeout_seconds,
                          options_.num_threads, options_.batch_size);
}

}  // namespace sieve
