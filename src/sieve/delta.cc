#include "sieve/delta.h"

#include <mutex>

#include "common/string_util.h"
#include "expr/eval.h"

namespace sieve {

namespace {

// Index of the owner column in `schema`, matching by bare-name suffix
// ("W.owner" matches "owner"). Returns -1 when absent.
int FindOwnerColumn(const Schema& schema) {
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const std::string& name = schema.column(i).name;
    size_t dot = name.rfind('.');
    std::string base = dot == std::string::npos ? name : name.substr(dot + 1);
    if (EqualsIgnoreCase(base, "owner")) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

Status RegisterDeltaUdf(Database* db, GuardStore* guards) {
  return db->udfs().Register(
      kDeltaUdfName,
      [db, guards](const std::vector<Value>& args,
                   UdfContext& ctx) -> Result<Value> {
        if (args.size() != 1 || args[0].type() != DataType::kInt) {
          return Status::InvalidArgument(
              "delta() expects a single integer guard id");
        }
        if (ctx.schema == nullptr || ctx.row == nullptr) {
          return Status::ExecutionError("delta() invoked without a tuple");
        }
        SIEVE_ASSIGN_OR_RETURN(const GuardStore::DeltaPartition* partition,
                               guards->GetDeltaPartition(args[0].AsInt()));

        // The partition's object expressions are shared by every worker of
        // a parallel scan, and evaluating an unbound column ref binds it in
        // place. Bind the whole partition against the tuple schema exactly
        // once; afterwards evaluation is read-only and race-free.
        std::call_once(partition->bind_once, [partition, &ctx] {
          for (const auto& [owner_key, entries] : partition->by_owner) {
            (void)owner_key;
            for (const GuardStore::DeltaPolicyEntry& entry : entries) {
              Status st = BindExpr(entry.object_expr.get(), *ctx.schema);
              if (!st.ok()) {
                partition->bind_status = st;
                return;
              }
            }
          }
        });
        SIEVE_RETURN_IF_ERROR(partition->bind_status);

        // Context filter: only policies owned by the tuple's owner can allow
        // the tuple (every policy carries oc_owner).
        int owner_idx = FindOwnerColumn(*ctx.schema);
        if (owner_idx < 0) {
          return Status::ExecutionError(
              "delta(): tuple schema has no owner attribute");
        }
        const Value& owner = (*ctx.row)[static_cast<size_t>(owner_idx)];
        auto it = partition->by_owner.find(owner.ToString());
        if (it == partition->by_owner.end()) return Value::Bool(false);

        Evaluator evaluator(ctx.schema, db, ctx.metadata, ctx.stats);
        for (const GuardStore::DeltaPolicyEntry& entry : it->second) {
          if (ctx.stats != nullptr) {
            ++ctx.stats->udf_policy_checks;
            ++ctx.stats->policy_evals;
          }
          SIEVE_ASSIGN_OR_RETURN(
              bool match,
              evaluator.EvalPredicate(*entry.object_expr, *ctx.row));
          if (match) return Value::Bool(true);
        }
        return Value::Bool(false);
      });
}

}  // namespace sieve
