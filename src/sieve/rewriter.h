#ifndef SIEVE_SIEVE_REWRITER_H_
#define SIEVE_SIEVE_REWRITER_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "parser/ast.h"
#include "policy/policy_store.h"
#include "sieve/cost_model.h"
#include "sieve/guard_selection.h"
#include "sieve/guard_store.h"

namespace sieve {

/// Access strategy selected per protected table (Section 5.5):
///   kLinearScan — table scan with the guarded expression as a filter;
///   kIndexQuery — index scan on a selective query predicate, guarded
///                 expression evaluated as a residual filter;
///   kIndexGuards — one index scan per guard (MySQL: FORCE INDEX + UNION;
///                 PostgreSQL: a single OR that the optimizer bitmap-ORs).
enum class AccessStrategy { kLinearScan, kIndexQuery, kIndexGuards };

const char* AccessStrategyName(AccessStrategy s);

/// Per-table diagnostics of one rewrite. Besides the counts/costs the
/// strategy selector reports, it names the exact policies and guards the
/// rewrite compiled in — the enforcement decision the audit log records.
struct TableRewriteInfo {
  std::string table;
  AccessStrategy strategy = AccessStrategy::kIndexGuards;
  size_t num_policies = 0;
  size_t num_guards = 0;
  size_t num_delta_guards = 0;  ///< guards evaluated through Δ
  /// Ids of the policies relevant to the querier/purpose on this table —
  /// the disjuncts the guarded expression (or the plain-filter fallback)
  /// enforces. Empty under default-deny.
  std::vector<int64_t> policy_ids;
  /// Ids of the guards of the guarded expression the rewrite used (empty
  /// for the plain-filter fallback and default-deny).
  std::vector<int64_t> guard_ids;
  double cost_linear = 0.0;
  double cost_index_query = 0.0;
  double cost_index_guards = 0.0;
  bool regenerated_guards = false;  ///< outdated flag forced regeneration
  double guard_generation_ms = 0.0;

  std::string ToString() const;
};

/// Output of QueryRewriter::Rewrite.
struct RewriteResult {
  SelectStmtPtr stmt;   ///< rewritten statement (WITH clauses prepended)
  std::string sql;      ///< rendered SQL of `stmt`
  std::vector<TableRewriteInfo> tables;
  /// True when the querier has no applicable policy on some protected table:
  /// default-deny yields an empty projection of that table.
  bool default_denied = false;
};

/// Distinct base-table names referenced anywhere in `stmt` — the FROM
/// clauses of every union arm, subqueries and CTE bodies — deduplicated
/// case-insensitively, original casing preserved. The session layer records
/// these (lower-cased) as a prepared rewrite's table dependencies for keyed
/// cache invalidation.
std::vector<std::string> CollectReferencedTables(const SelectStmt& stmt);

/// Sieve's query rewriter (Section 5): for every table in the query that has
/// policies, build (or reuse) the guarded policy expression, pick the access
/// strategy with the cost model + EXPLAIN, choose inline vs Δ per guard, and
/// emit a WITH clause that replaces the table.
///
/// The plans this shapes are what the parallel executor later fans out: the
/// MySQL-profile IndexGuards strategy emits a UNION of guard arms (driven
/// concurrently by UnionOperator), and multi-table queries join the
/// policy-filtered CTE (the probe side HashJoinOperator partitions).
/// Query-local predicates ride along into the CTE body only when the CTE
/// has a single consumer — one reference, no set-op chain — since every
/// reference scans the same materialized CTE.
///
/// Threading: Rewrite runs single-threaded at query-intercept time, before
/// any parallel execution starts; instances are not safe for concurrent use
/// (guard regeneration mutates the GuardStore).
class QueryRewriter {
 public:
  QueryRewriter(Database* db, PolicyStore* policies, GuardStore* guards,
                const CostModel* cost, const GroupResolver* resolver)
      : db_(db),
        policies_(policies),
        guards_(guards),
        cost_(cost),
        resolver_(resolver),
        builder_(db, policies, cost, resolver) {}

  Result<RewriteResult> Rewrite(const SelectStmt& query,
                                const QueryMetadata& md);

  Result<RewriteResult> RewriteSql(const std::string& sql,
                                   const QueryMetadata& md);

  /// Builds the boolean expression of one guard: guard predicate AND
  /// (inline partition DNF | delta(guard_id) = true). Exposed for tests.
  ExprPtr GuardArmExpr(const Guard& guard, bool use_delta) const;

 private:
  /// Ensures a fresh guarded expression exists for (md, table); regenerates
  /// when missing or outdated. Returns diagnostics through `info`.
  Result<const GuardedExpression*> EnsureGuards(const QueryMetadata& md,
                                                const std::string& table,
                                                TableRewriteInfo* info);

  /// Conjuncts of the query WHERE that reference only `table`'s columns
  /// (plus literals); these are pushed into the WITH body per Section 5.5.
  std::vector<ExprPtr> TableLocalConjuncts(const SelectStmt& query,
                                           const std::string& table) const;

  Database* db_;
  PolicyStore* policies_;
  GuardStore* guards_;
  const CostModel* cost_;
  const GroupResolver* resolver_;
  GuardedExpressionBuilder builder_;
};

}  // namespace sieve

#endif  // SIEVE_SIEVE_REWRITER_H_
