#include "engine/database.h"

#include "common/string_util.h"
#include "parser/parser.h"

namespace sieve {

Status Database::CreateTable(const std::string& name, Schema schema) {
  return catalog_.CreateTable(name, std::move(schema));
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  SIEVE_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  return entry->indexes.CreateIndex(*entry->table, column);
}

Result<RowId> Database::Insert(const std::string& table, Row row) {
  SIEVE_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  SIEVE_ASSIGN_OR_RETURN(RowId id, entry->table->Insert(std::move(row)));
  entry->indexes.OnInsert(entry->table->Get(id), id);
  return id;
}

Status Database::Delete(const std::string& table, RowId id) {
  SIEVE_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  if (entry->table->IsLive(id)) {
    entry->indexes.OnDelete(entry->table->Get(id), id);
  }
  return entry->table->Delete(id);
}

Status Database::Analyze() {
  for (const std::string& name : catalog_.TableNames()) {
    TableEntry* entry = catalog_.Find(name);
    entry->indexes.RefreshStatistics();
  }
  return Status::OK();
}

Result<ResultSet> Database::ExecuteSql(const std::string& sql,
                                       const QueryMetadata* metadata,
                                       double timeout_seconds,
                                       int num_threads, int batch_size) {
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  return ExecuteStmt(*stmt, metadata, timeout_seconds, num_threads,
                     batch_size);
}

ThreadPool* Database::EnsurePool(size_t num_threads) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pools_.empty() || pools_.back()->size() < num_threads) {
    pools_.push_back(std::make_unique<ThreadPool>(num_threads));
  }
  return pools_.back().get();
}

Result<ResultSet> Database::ExecuteStmt(const SelectStmt& stmt,
                                        const QueryMetadata* metadata,
                                        double timeout_seconds,
                                        int num_threads, int batch_size) {
  SIEVE_ASSIGN_OR_RETURN(
      std::unique_ptr<QueryCursor> cursor,
      OpenCursor(stmt, metadata, timeout_seconds, num_threads, batch_size));
  return cursor->Drain();
}

Result<std::unique_ptr<QueryCursor>> Database::OpenCursor(
    const SelectStmt& stmt, const QueryMetadata* metadata,
    double timeout_seconds, int num_threads, int batch_size) {
  // The context (and with it the timeout epoch) is created before planning
  // so planning time counts against the query budget, as it always has.
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.hooks = this;
  ctx.metadata = metadata;
  ctx.timeout_seconds = timeout_seconds;
  // 0 = adaptive per-operator sizing (see EffectiveBatchSize); negatives
  // clamp to the legacy row-at-a-time size.
  ctx.batch_size = batch_size < 0 ? 1 : batch_size;
  // One CTE cache per query, shared by every worker context so each CTE
  // body materializes exactly once no matter which worker gets there first.
  ctx.ctes = std::make_shared<CteCache>();
  if (num_threads > 1) {
    ctx.num_threads = num_threads;
    ctx.pool = EnsurePool(static_cast<size_t>(num_threads));
  }
  Optimizer optimizer(&catalog_, &profile_);
  SIEVE_ASSIGN_OR_RETURN(PlannedQuery plan, optimizer.Plan(stmt));
  return QueryCursor::Open(std::move(plan.root), ctx);
}

Result<ExplainInfo> Database::ExplainSql(const std::string& sql) {
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  return ExplainStmt(*stmt);
}

Result<ExplainInfo> Database::ExplainStmt(const SelectStmt& stmt) {
  Optimizer optimizer(&catalog_, &profile_);
  SIEVE_ASSIGN_OR_RETURN(PlannedQuery plan, optimizer.Plan(stmt));
  return plan.explain;
}

double Database::EstimateSelectivity(const std::string& table,
                                     const Expr& predicate) {
  Optimizer optimizer(&catalog_, &profile_);
  return optimizer.EstimatePredicateSelectivity(table, predicate);
}

namespace {

// Inner scope of a subquery: concatenation of the (qualified) schemas of
// every base table / CTE named in its FROM list. Used to decide which
// column refs are correlated (outer) references.
Schema InnerScopeSchema(const SelectStmt& stmt, Catalog* catalog) {
  Schema inner;
  for (const auto& ref : stmt.from) {
    if (ref.subquery != nullptr) continue;  // conservatively ignored
    const TableEntry* entry = catalog->Find(ref.table_name);
    if (entry == nullptr) continue;
    Schema qualified =
        QualifySchema(entry->table->schema(), ref.EffectiveName());
    for (const auto& col : qualified.columns()) inner.AddColumn(col);
  }
  return inner;
}

// Recursively replaces outer references in-place.
void SubstituteExpr(ExprPtr* slot, const Schema& inner,
                    const Schema& outer_schema, const Row& outer_row) {
  Expr* e = slot->get();
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(e);
      ExprPtr probe = ref->Clone();
      static_cast<ColumnRefExpr*>(probe.get())->set_bound_index(-1);
      if (BindExpr(probe.get(), inner).ok()) return;  // resolves inside
      ExprPtr outer_probe = ref->Clone();
      auto* op = static_cast<ColumnRefExpr*>(outer_probe.get());
      op->set_bound_index(-1);
      if (BindExpr(outer_probe.get(), outer_schema).ok()) {
        Value v = outer_row[static_cast<size_t>(op->bound_index())];
        *slot = MakeLiteral(std::move(v));
      }
      return;
    }
    case ExprKind::kComparison: {
      auto* c = static_cast<ComparisonExpr*>(e);
      SubstituteExpr(&c->mutable_left(), inner, outer_schema, outer_row);
      SubstituteExpr(&c->mutable_right(), inner, outer_schema, outer_row);
      return;
    }
    case ExprKind::kBetween: {
      auto* b = static_cast<BetweenExpr*>(e);
      SubstituteExpr(&b->mutable_input(), inner, outer_schema, outer_row);
      SubstituteExpr(&b->mutable_lo(), inner, outer_schema, outer_row);
      SubstituteExpr(&b->mutable_hi(), inner, outer_schema, outer_row);
      return;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      SubstituteExpr(&in->mutable_input(), inner, outer_schema, outer_row);
      for (auto& item : in->mutable_items()) {
        SubstituteExpr(&item, inner, outer_schema, outer_row);
      }
      return;
    }
    case ExprKind::kAnd:
      for (auto& c : static_cast<AndExpr*>(e)->mutable_children()) {
        SubstituteExpr(&c, inner, outer_schema, outer_row);
      }
      return;
    case ExprKind::kOr:
      for (auto& c : static_cast<OrExpr*>(e)->mutable_children()) {
        SubstituteExpr(&c, inner, outer_schema, outer_row);
      }
      return;
    case ExprKind::kNot:
      SubstituteExpr(&static_cast<NotExpr*>(e)->mutable_child(), inner,
                     outer_schema, outer_row);
      return;
    case ExprKind::kUdfCall:
      for (auto& a : static_cast<UdfCallExpr*>(e)->mutable_args()) {
        SubstituteExpr(&a, inner, outer_schema, outer_row);
      }
      return;
    default:
      return;
  }
}

}  // namespace

Status Database::SubstituteOuterRefs(SelectStmt* stmt,
                                     const Schema& outer_schema,
                                     const Row& outer_row) {
  Schema inner = InnerScopeSchema(*stmt, &catalog_);
  SelectStmt* current = stmt;
  while (current != nullptr) {
    if (current->where != nullptr) {
      SubstituteExpr(&current->where, inner, outer_schema, outer_row);
    }
    current = current->union_next.get();
  }
  return Status::OK();
}

Result<Value> Database::EvalScalarSubquery(const std::string& sql,
                                           const Schema& outer_schema,
                                           const Row& outer_row,
                                           const QueryMetadata* metadata,
                                           ExecStats* stats) {
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  SIEVE_RETURN_IF_ERROR(SubstituteOuterRefs(stmt.get(), outer_schema, outer_row));

  Optimizer optimizer(&catalog_, &profile_);
  SIEVE_ASSIGN_OR_RETURN(PlannedQuery plan, optimizer.Plan(*stmt));
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.hooks = this;
  ctx.metadata = metadata;
  ctx.stats = stats;
  SIEVE_ASSIGN_OR_RETURN(ResultSet result, Executor::Run(plan.root.get(), &ctx));
  if (result.rows.empty()) return Value::Null();
  if (result.schema.num_columns() != 1) {
    return Status::ExecutionError(
        "scalar subquery must produce exactly one column: " + sql);
  }
  return result.rows.front().front();
}

Result<Value> Database::CallUdf(const std::string& name,
                                const std::vector<Value>& args,
                                const Schema& schema, const Row& row,
                                const QueryMetadata* metadata,
                                ExecStats* stats) {
  const UdfFn* fn = udfs_.Find(name);
  if (fn == nullptr) {
    return Status::NotFound("no such UDF: " + name);
  }
  if (stats != nullptr) ++stats->udf_invocations;
  // Simulate the UDF calling-convention boundary of a real DBMS: the tuple's
  // attributes are marshalled into the UDF ABI, plus fixed dispatch
  // overhead (see EngineProfile::udf_invocation_spin).
  {
    size_t sink = 0;
    for (const Value& v : row) sink ^= v.Hash();
    for (int i = 0; i < profile_.udf_invocation_spin; ++i) {
      sink = sink * 1099511628211ULL + 0x9e3779b9;
    }
    // Relaxed atomic: concurrent partitions all funnel through this sink;
    // it only needs to defeat dead-code elimination, not order anything.
    benchmark_sink_.fetch_add(sink, std::memory_order_relaxed);
  }
  UdfContext ctx;
  ctx.db = this;
  ctx.schema = &schema;
  ctx.row = &row;
  ctx.metadata = metadata;
  ctx.stats = stats;
  return (*fn)(args, ctx);
}

}  // namespace sieve
