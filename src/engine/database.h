#ifndef SIEVE_ENGINE_DATABASE_H_
#define SIEVE_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/udf.h"
#include "expr/eval.h"
#include "parser/ast.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/profile.h"
#include "storage/catalog.h"

namespace sieve {

/// The embedded relational engine ("minidb") that plays the role of MySQL /
/// PostgreSQL underneath the Sieve middleware. One instance owns a catalog,
/// secondary indexes with histograms, a UDF registry and an engine profile
/// (MySQL-like honors index hints; PostgreSQL-like ignores hints and bitmap-
/// ORs index scans). All SQL enters through ExecuteSql/ExecuteStmt.
class Database : public EngineHooks {
 public:
  explicit Database(EngineProfile profile = EngineProfile::MySqlLike())
      : profile_(profile) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  UdfRegistry& udfs() { return udfs_; }
  const EngineProfile& profile() const { return profile_; }
  void set_profile(EngineProfile profile) { profile_ = profile; }

  // -------------------------------------------------------------------------
  // DDL / DML
  // -------------------------------------------------------------------------

  Status CreateTable(const std::string& name, Schema schema);
  Status CreateIndex(const std::string& table, const std::string& column);
  /// Inserts a row and maintains all indexes on the table.
  Result<RowId> Insert(const std::string& table, Row row);
  Status Delete(const std::string& table, RowId id);
  /// Rebuilds histograms on every index (like ANALYZE).
  Status Analyze();

  // -------------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------------

  /// Parses, plans and runs `sql`. `timeout_seconds` 0 disables the timeout.
  /// `num_threads` > 1 enables parallel execution — morsel-partitioned
  /// scan pipelines plus the UNION / hash-join / hash-aggregate / EXCEPT
  /// operator interiors — on an internal thread pool (1 = serial, the
  /// default). `batch_size` is the rows-per-batch unit of the vectorized
  /// executor (1 reproduces legacy row-at-a-time execution; 0 picks an
  /// adaptive per-operator size from the row width; negatives clamp to 1).
  /// Every (num_threads, batch_size) combination reproduces identical
  /// rows, row order and ExecStats.
  Result<ResultSet> ExecuteSql(const std::string& sql,
                               const QueryMetadata* metadata = nullptr,
                               double timeout_seconds = 0.0,
                               int num_threads = 1,
                               int batch_size = static_cast<int>(kDefaultBatchSize));

  /// Plans and runs an already-parsed statement. Implemented as
  /// OpenCursor + QueryCursor::Drain, so one-shot and cursor execution
  /// share a single code path (identical rows, order and ExecStats).
  Result<ResultSet> ExecuteStmt(const SelectStmt& stmt,
                                const QueryMetadata* metadata = nullptr,
                                double timeout_seconds = 0.0,
                                int num_threads = 1,
                                int batch_size = static_cast<int>(kDefaultBatchSize));

  /// Plans `stmt` and opens a pull-based cursor over it (chunked
  /// QueryCursor::Next instead of a materialized ResultSet). `metadata`
  /// must outlive the cursor. The timeout clock starts here and keeps
  /// running between Next calls.
  Result<std::unique_ptr<QueryCursor>> OpenCursor(
      const SelectStmt& stmt, const QueryMetadata* metadata = nullptr,
      double timeout_seconds = 0.0, int num_threads = 1,
      int batch_size = static_cast<int>(kDefaultBatchSize));

  /// Plans `sql` and returns the access-path summary without executing —
  /// the EXPLAIN facility Sieve's strategy selector relies on (Section 5.5).
  Result<ExplainInfo> ExplainSql(const std::string& sql);
  Result<ExplainInfo> ExplainStmt(const SelectStmt& stmt);

  /// Estimated selectivity of one predicate on `table` (paper: ρ(pred)).
  double EstimateSelectivity(const std::string& table, const Expr& predicate);

  // -------------------------------------------------------------------------
  // EngineHooks
  // -------------------------------------------------------------------------

  Result<Value> EvalScalarSubquery(const std::string& sql,
                                   const Schema& outer_schema,
                                   const Row& outer_row,
                                   const QueryMetadata* metadata,
                                   ExecStats* stats) override;

  Result<Value> CallUdf(const std::string& name, const std::vector<Value>& args,
                        const Schema& schema, const Row& row,
                        const QueryMetadata* metadata,
                        ExecStats* stats) override;

 private:
  /// Replaces column refs of a correlated subquery that only resolve in the
  /// outer scope with the outer row's values.
  Status SubstituteOuterRefs(SelectStmt* stmt, const Schema& outer_schema,
                             const Row& outer_row);

  /// The worker pool backing partition-parallel execution, created on the
  /// first parallel query and grown when a query asks for more threads.
  /// Outgrown pools are retired, not destroyed: a concurrent query may
  /// still be running on one, and ThreadPool's destructor joins.
  ThreadPool* EnsurePool(size_t num_threads);

  Catalog catalog_;
  UdfRegistry udfs_;
  EngineProfile profile_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;  // back() is current
  std::mutex pool_mu_;
  /// Sink for the simulated UDF marshalling work (prevents the optimizer
  /// from eliding it). Atomic: parallel partitions cross the UDF boundary
  /// concurrently.
  std::atomic<size_t> benchmark_sink_{0};
};

}  // namespace sieve

#endif  // SIEVE_ENGINE_DATABASE_H_
