#ifndef SIEVE_ENGINE_DATABASE_H_
#define SIEVE_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/udf.h"
#include "expr/eval.h"
#include "parser/ast.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/profile.h"
#include "storage/catalog.h"

namespace sieve {

/// The embedded relational engine ("minidb") that plays the role of MySQL /
/// PostgreSQL underneath the Sieve middleware. One instance owns a catalog,
/// secondary indexes with histograms, a UDF registry and an engine profile
/// (MySQL-like honors index hints; PostgreSQL-like ignores hints and bitmap-
/// ORs index scans). All SQL enters through ExecuteSql/ExecuteStmt.
class Database : public EngineHooks {
 public:
  explicit Database(EngineProfile profile = EngineProfile::MySqlLike())
      : profile_(profile) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  UdfRegistry& udfs() { return udfs_; }
  const EngineProfile& profile() const { return profile_; }
  void set_profile(EngineProfile profile) { profile_ = profile; }

  // -------------------------------------------------------------------------
  // DDL / DML
  // -------------------------------------------------------------------------

  Status CreateTable(const std::string& name, Schema schema);
  Status CreateIndex(const std::string& table, const std::string& column);
  /// Inserts a row and maintains all indexes on the table.
  Result<RowId> Insert(const std::string& table, Row row);
  Status Delete(const std::string& table, RowId id);
  /// Rebuilds histograms on every index (like ANALYZE).
  Status Analyze();

  // -------------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------------

  /// Parses, plans and runs `sql`. `timeout_seconds` 0 disables the timeout.
  Result<ResultSet> ExecuteSql(const std::string& sql,
                               const QueryMetadata* metadata = nullptr,
                               double timeout_seconds = 0.0);

  /// Plans and runs an already-parsed statement.
  Result<ResultSet> ExecuteStmt(const SelectStmt& stmt,
                                const QueryMetadata* metadata = nullptr,
                                double timeout_seconds = 0.0);

  /// Plans `sql` and returns the access-path summary without executing —
  /// the EXPLAIN facility Sieve's strategy selector relies on (Section 5.5).
  Result<ExplainInfo> ExplainSql(const std::string& sql);
  Result<ExplainInfo> ExplainStmt(const SelectStmt& stmt);

  /// Estimated selectivity of one predicate on `table` (paper: ρ(pred)).
  double EstimateSelectivity(const std::string& table, const Expr& predicate);

  // -------------------------------------------------------------------------
  // EngineHooks
  // -------------------------------------------------------------------------

  Result<Value> EvalScalarSubquery(const std::string& sql,
                                   const Schema& outer_schema,
                                   const Row& outer_row,
                                   const QueryMetadata* metadata,
                                   ExecStats* stats) override;

  Result<Value> CallUdf(const std::string& name, const std::vector<Value>& args,
                        const Schema& schema, const Row& row,
                        const QueryMetadata* metadata,
                        ExecStats* stats) override;

 private:
  /// Replaces column refs of a correlated subquery that only resolve in the
  /// outer scope with the outer row's values.
  Status SubstituteOuterRefs(SelectStmt* stmt, const Schema& outer_schema,
                             const Row& outer_row);

  Catalog catalog_;
  UdfRegistry udfs_;
  EngineProfile profile_;
  /// Sink for the simulated UDF marshalling work (prevents the optimizer
  /// from eliding it).
  volatile size_t benchmark_sink_ = 0;
};

}  // namespace sieve

#endif  // SIEVE_ENGINE_DATABASE_H_
