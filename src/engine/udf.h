#ifndef SIEVE_ENGINE_UDF_H_
#define SIEVE_ENGINE_UDF_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_stats.h"
#include "common/metadata.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/table.h"

namespace sieve {

class Database;

/// Everything a UDF may look at when invoked for one tuple: the database
/// (the Δ operator reads the policy tables through it), the tuple and its
/// schema, the query metadata, and the stat counters.
struct UdfContext {
  Database* db = nullptr;
  const Schema* schema = nullptr;
  const Row* row = nullptr;
  const QueryMetadata* metadata = nullptr;
  ExecStats* stats = nullptr;
};

using UdfFn =
    std::function<Result<Value>(const std::vector<Value>& args, UdfContext&)>;

/// Name -> function registry, mirroring CREATE FUNCTION support in the
/// DBMSs the paper targets. Invocations are counted per query so the cost
/// model can calibrate UDF invocation overhead (Section 5.4).
class UdfRegistry {
 public:
  Status Register(const std::string& name, UdfFn fn);
  bool Contains(const std::string& name) const;
  const UdfFn* Find(const std::string& name) const;

 private:
  std::unordered_map<std::string, UdfFn> fns_;  // keys lower-cased
};

}  // namespace sieve

#endif  // SIEVE_ENGINE_UDF_H_
