#include "engine/udf.h"

#include "common/string_util.h"

namespace sieve {

Status UdfRegistry::Register(const std::string& name, UdfFn fn) {
  std::string key = ToLower(name);
  if (fns_.count(key) > 0) {
    return Status::AlreadyExists("UDF already registered: " + name);
  }
  fns_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

bool UdfRegistry::Contains(const std::string& name) const {
  return fns_.count(ToLower(name)) > 0;
}

const UdfFn* UdfRegistry::Find(const std::string& name) const {
  auto it = fns_.find(ToLower(name));
  return it == fns_.end() ? nullptr : &it->second;
}

}  // namespace sieve
