#ifndef SIEVE_COMMON_TIMER_H_
#define SIEVE_COMMON_TIMER_H_

#include <chrono>

namespace sieve {

/// Monotonic stopwatch used by the benchmark harness and the cost-model
/// calibration routines.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_TIMER_H_
