#ifndef SIEVE_COMMON_VALUE_H_
#define SIEVE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace sieve {

/// Column data types supported by minidb. These cover the TIPPERS and Mall
/// schemas used in the paper (int, varchar, time, date) plus double/bool for
/// aggregates and predicates.
enum class DataType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kTime,  // seconds since midnight, stored as int64
  kDate,  // days since 1970-01-01, stored as int64
};

const char* DataTypeName(DataType type);

/// A dynamically typed cell value. Time and Date are int64 under the hood
/// but retain their logical type so that formatting and histogram bucketing
/// stay meaningful.
class Value {
 public:
  Value() : type_(DataType::kNull), num_(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, v ? 1 : 0); }
  static Value Int(int64_t v) { return Value(DataType::kInt, v); }
  static Value Double(double v) {
    Value out;
    out.type_ = DataType::kDouble;
    out.real_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = DataType::kString;
    out.str_ = std::move(v);
    return out;
  }
  /// Seconds since midnight [0, 86400).
  static Value Time(int64_t seconds) { return Value(DataType::kTime, seconds); }
  /// Days since the Unix epoch.
  static Value Date(int64_t days) { return Value(DataType::kDate, days); }

  /// Parses "HH:MM" or "HH:MM:SS" into a Time value.
  static Result<Value> ParseTime(const std::string& text);
  /// Parses "YYYY-MM-DD" into a Date value.
  static Result<Value> ParseDate(const std::string& text);

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool AsBool() const { return num_ != 0; }
  int64_t AsInt() const { return num_; }
  double AsDouble() const {
    return type_ == DataType::kDouble ? real_ : static_cast<double>(num_);
  }
  const std::string& AsString() const { return str_; }

  /// Underlying numeric payload for ordered types (int/time/date/bool).
  int64_t raw() const { return num_; }

  /// Three-way comparison. Null sorts before everything; values of different
  /// type families compare by type id (stable but arbitrary), except the
  /// int/double family which compares numerically.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  size_t Hash() const;

  /// Human-readable rendering; Time as HH:MM:SS, Date as YYYY-MM-DD.
  std::string ToString() const;
  /// SQL literal rendering (strings/time/date quoted and escaped).
  std::string ToSqlLiteral() const;

 private:
  Value(DataType type, int64_t num) : type_(type), num_(num) {}

  DataType type_;
  int64_t num_ = 0;
  double real_ = 0.0;
  std::string str_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace sieve

#endif  // SIEVE_COMMON_VALUE_H_
