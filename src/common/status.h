#ifndef SIEVE_COMMON_STATUS_H_
#define SIEVE_COMMON_STATUS_H_

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace sieve {

/// Error categories used across the engine and middleware. Mirrors the
/// Status idiom used by Arrow/RocksDB: no exceptions cross public APIs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kExecutionError,
  kTimeout,
  kAccessDenied,
  kInternal,
};

/// Lightweight status object: success or (code, message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status AccessDenied(std::string msg) {
    return Status(StatusCode::kAccessDenied, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Move-friendly; access to
/// the value of an error result aborts in debug builds (undefined otherwise),
/// so callers must check ok() first.
template <typename T>
class Result {
 public:
  template <typename U,
            typename = std::enable_if_t<
                std::is_convertible_v<U&&, T> &&
                !std::is_same_v<std::decay_t<U>, Result> &&
                !std::is_same_v<std::decay_t<U>, Status>>>
  Result(U&& value)                                         // NOLINT(google-explicit-constructor)
      : data_(std::in_place_type<T>, std::forward<U>(value)) {}
  Result(Status status) : data_(std::move(status)) {}       // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const { return std::get<Status>(data_); }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagate a non-OK Status from an expression returning Status.
#define SIEVE_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::sieve::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assign the value of a Result<T> expression to `lhs` or propagate its error.
#define SIEVE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SIEVE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SIEVE_ASSIGN_OR_RETURN_NAME(a, b) SIEVE_ASSIGN_OR_RETURN_CONCAT(a, b)
#define SIEVE_ASSIGN_OR_RETURN(lhs, expr) \
  SIEVE_ASSIGN_OR_RETURN_IMPL(            \
      SIEVE_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace sieve

#endif  // SIEVE_COMMON_STATUS_H_
