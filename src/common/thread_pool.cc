#include "common/thread_pool.h"

namespace sieve {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();  // rethrows the first stored exception
}

}  // namespace sieve
