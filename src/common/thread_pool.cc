#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>

#include "common/fault_injection.h"

namespace sieve {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

namespace {

// Shared state of one ParallelFor batch. The batch's helper tasks and the
// calling thread all claim indices from `next`; the caller blocks on
// `done` only for indices that other threads claimed. Helper tasks hold
// the state via shared_ptr because they may be popped from the queue
// after the batch already finished (they then find next >= n and return
// without touching `fn`, which lives on the caller's stack).
struct BatchState {
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done;
  size_t completed = 0;
  size_t first_error_index = 0;
  std::exception_ptr first_error;
};

// Message of the in-flight exception; callable only from inside a catch
// block (rethrows and re-catches the active exception).
std::string CurrentExceptionMessage() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<BatchState>();

  // Claim loop: grab the next unstarted index and run it. `fn` is only
  // dereferenced for claimed indices (next < n), and a claimed index keeps
  // the caller blocked below until it completes — so `fn` is always alive
  // when invoked, even from a stale helper task.
  const std::function<void(size_t)>* fn_ptr = &fn;
  auto claim_loop = [state, fn_ptr, n] {
    while (true) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      // Chaos knob: delays a claimed index before it runs, perturbing the
      // dynamic morsel schedule (a slow worker, a descheduled thread).
      if (SIEVE_FAULT_POINT("pool.task.stall")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::exception_ptr error;
      try {
        (*fn_ptr)(i);
      } catch (...) {
        // Park the failure wrapped with its task index — a bare rethrow at
        // the barrier gave no hint which item failed. The original
        // exception nests inside the wrapper.
        try {
          std::throw_with_nested(
              ParallelForTaskError(i, CurrentExceptionMessage()));
        } catch (...) {
          error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (error != nullptr &&
          (state->first_error == nullptr || i < state->first_error_index)) {
        state->first_error = error;
        state->first_error_index = i;
      }
      if (++state->completed == n) state->done.notify_all();
    }
  };

  // One helper per worker (capped at n); the caller claims too, so a batch
  // makes progress even when every worker is busy with other batches.
  size_t helpers = threads_.size() < n ? threads_.size() : n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace(std::packaged_task<void()>(claim_loop));
    }
  }
  cv_.notify_all();

  claim_loop();  // caller participates: never blocks on queue capacity

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state, n] { return state->completed == n; });
  if (state->first_error != nullptr) std::rethrow_exception(state->first_error);
}

}  // namespace sieve
