#ifndef SIEVE_COMMON_STRING_UTIL_H_
#define SIEVE_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace sieve {

/// Case-insensitive ASCII string equality (SQL keywords, identifiers).
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sieve

#endif  // SIEVE_COMMON_STRING_UTIL_H_
