#ifndef SIEVE_COMMON_SHARED_GATE_H_
#define SIEVE_COMMON_SHARED_GATE_H_

#include <condition_variable>
#include <mutex>

namespace sieve {

/// Reader-writer gate with *thread-agnostic* ownership: unlike
/// std::shared_mutex (whose unlock must happen on the locking thread —
/// pthread rwlocks make cross-thread release undefined), a SharedGate
/// lock is a counted token that may be acquired on one thread and
/// released on another. The network front-end relies on this: a server
/// worker opens a cursor (taking the middleware state lock shared), a
/// *different* worker serves its FETCHes, and the reaper thread may tear
/// the connection down — the pin travels with the connection object, not
/// with any thread.
///
/// Satisfies the Lockable and SharedLockable named requirements, so
/// std::unique_lock<SharedGate> and std::shared_lock<SharedGate> work
/// as drop-in replacements for their shared_mutex counterparts.
///
/// Writer-preference: once a writer is waiting, new readers queue behind
/// it, so a steady reader stream cannot starve policy mutations. As with
/// shared_mutex, recursive acquisition on one thread is not allowed (a
/// reader re-entering while a writer waits would deadlock) — the
/// middleware's session layer documents and upholds that contract.
class SharedGate {
 public:
  SharedGate() = default;
  SharedGate(const SharedGate&) = delete;
  SharedGate& operator=(const SharedGate&) = delete;

  void lock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    readers_cv_.wait(l,
                     [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }

  bool try_lock_shared() {
    std::lock_guard<std::mutex> l(mu_);
    if (writer_active_ || waiting_writers_ > 0) return false;
    ++active_readers_;
    return true;
  }

  void unlock_shared() {
    std::lock_guard<std::mutex> l(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      writers_cv_.notify_one();
    }
  }

  void lock() {
    std::unique_lock<std::mutex> l(mu_);
    ++waiting_writers_;
    writers_cv_.wait(l, [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::lock_guard<std::mutex> l(mu_);
    if (writer_active_ || active_readers_ > 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::lock_guard<std::mutex> l(mu_);
    writer_active_ = false;
    if (waiting_writers_ > 0) {
      writers_cv_.notify_one();
    } else {
      readers_cv_.notify_all();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable readers_cv_;
  std::condition_variable writers_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_SHARED_GATE_H_
