#ifndef SIEVE_COMMON_ARENA_H_
#define SIEVE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace sieve {

/// Chunked bump allocator backing batch-local memory (column arrays, null
/// bytes, selection vectors, copied string payloads). Allocation is a
/// pointer bump inside the current block; Clear() rewinds every block to
/// empty but keeps the memory, so a batch that is refilled thousands of
/// times per query touches the allocator's free lists exactly once.
///
/// Alignment: Allocate aligns to `align` (a power of two, at most
/// alignof(std::max_align_t)); AllocateArray<T> aligns to alignof(T).
/// Memory is never constructed or destroyed — only trivially copyable
/// payloads belong here (the batch keeps non-trivial cells elsewhere).
/// Single-threaded like the batch that owns it.
class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = kMinBlockBytes)
      : next_block_bytes_(initial_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : initial_block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align`.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    Block* block = current_ < blocks_.size() ? blocks_[current_].get() : nullptr;
    while (true) {
      if (block != nullptr) {
        uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
        uintptr_t cursor = (base + block->used + align - 1) & ~(align - 1);
        if (cursor + bytes <= base + block->size) {
          block->used = (cursor - base) + bytes;
          return reinterpret_cast<void*>(cursor);
        }
        // Current block is full: advance to the next retained block (if
        // any) — Clear() keeps blocks so refills walk the same chain.
        if (current_ + 1 < blocks_.size()) {
          block = blocks_[++current_].get();
          continue;
        }
      }
      block = NewBlock(bytes + align);
    }
  }

  /// Returns an uninitialized array of `count` Ts (T trivially copyable).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena arrays hold trivially copyable payloads only");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Copies `s` into the arena and returns a view of the copy.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return std::string_view();
    char* dst = AllocateArray<char>(s.size());
    std::memcpy(dst, s.data(), s.size());
    return std::string_view(dst, s.size());
  }

  /// Rewinds every block to empty without releasing memory. Invalidates
  /// all previously returned pointers.
  void Clear() {
    for (auto& block : blocks_) block->used = 0;
    current_ = 0;
  }

  size_t bytes_reserved() const {
    size_t total = 0;
    for (const auto& block : blocks_) total += block->size;
    return total;
  }

 private:
  static constexpr size_t kMinBlockBytes = 4 << 10;
  static constexpr size_t kMaxBlockBytes = 1 << 20;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Block* NewBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    while (size < min_bytes) size *= 2;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
    auto block = std::make_unique<Block>();
    block->data = std::make_unique<char[]>(size);
    block->size = size;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    return blocks_.back().get();
  }

  std::vector<std::unique_ptr<Block>> blocks_;
  size_t current_ = 0;
  size_t next_block_bytes_;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_ARENA_H_
