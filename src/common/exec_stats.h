#ifndef SIEVE_COMMON_EXEC_STATS_H_
#define SIEVE_COMMON_EXEC_STATS_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace sieve {

/// Execution counters collected by one query run. These are the
/// hardware-independent observables the reproduction reports next to wall
/// clock: the paper's cost model is driven by tuples read (cr), predicate
/// evaluations (ce, α) and UDF invocation counts.
struct ExecStats {
  uint64_t tuples_scanned = 0;      ///< rows fetched by seq scans
  uint64_t index_probe_rows = 0;    ///< rows fetched through index scans
  uint64_t comparisons = 0;         ///< atomic predicate evaluations
  uint64_t policy_evals = 0;        ///< full policy object-condition checks
  uint64_t udf_invocations = 0;     ///< UDF calls (incl. the Δ operator)
  uint64_t udf_policy_checks = 0;   ///< policies evaluated inside Δ
  uint64_t subquery_execs = 0;      ///< correlated scalar subquery runs
  uint64_t rows_output = 0;         ///< rows produced by the plan root

  /// Merges another counter set into this one. Parallel execution gives
  /// every worker its own ExecStats and folds them together at the barrier,
  /// so no counter is ever incremented from two threads.
  void Add(const ExecStats& other) {
    tuples_scanned += other.tuples_scanned;
    index_probe_rows += other.index_probe_rows;
    comparisons += other.comparisons;
    policy_evals += other.policy_evals;
    udf_invocations += other.udf_invocations;
    udf_policy_checks += other.udf_policy_checks;
    subquery_execs += other.subquery_execs;
    rows_output += other.rows_output;
  }

  bool operator==(const ExecStats& other) const {
    return tuples_scanned == other.tuples_scanned &&
           index_probe_rows == other.index_probe_rows &&
           comparisons == other.comparisons &&
           policy_evals == other.policy_evals &&
           udf_invocations == other.udf_invocations &&
           udf_policy_checks == other.udf_policy_checks &&
           subquery_execs == other.subquery_execs &&
           rows_output == other.rows_output;
  }
  bool operator!=(const ExecStats& other) const { return !(*this == other); }

  std::string ToString() const;
};

inline std::string ExecStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "scanned=%llu probed=%llu cmp=%llu pol=%llu udf=%llu "
                "udf_pol=%llu subq=%llu out=%llu",
                static_cast<unsigned long long>(tuples_scanned),
                static_cast<unsigned long long>(index_probe_rows),
                static_cast<unsigned long long>(comparisons),
                static_cast<unsigned long long>(policy_evals),
                static_cast<unsigned long long>(udf_invocations),
                static_cast<unsigned long long>(udf_policy_checks),
                static_cast<unsigned long long>(subquery_execs),
                static_cast<unsigned long long>(rows_output));
  return buf;
}

}  // namespace sieve

#endif  // SIEVE_COMMON_EXEC_STATS_H_
