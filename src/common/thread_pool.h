#ifndef SIEVE_COMMON_THREAD_POOL_H_
#define SIEVE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sieve {

/// Thrown by ThreadPool::ParallelFor when a work item throws: names the
/// failing index and the original message, so the failure is attributable
/// at the barrier instead of surfacing as an anonymous rethrow. The
/// original exception rides along as the nested exception
/// (std::rethrow_if_nested recovers its concrete type).
class ParallelForTaskError : public std::runtime_error {
 public:
  ParallelForTaskError(size_t task_index, const std::string& message)
      : std::runtime_error("parallel task " + std::to_string(task_index) +
                           " failed: " + message),
        task_index_(task_index) {}

  size_t task_index() const { return task_index_; }

 private:
  size_t task_index_;
};

/// Fixed-size worker pool backing partition-parallel query execution.
/// Tasks are plain callables; Submit returns a future that completes when
/// the task finishes and carries any exception the task threw. The
/// destructor drains the queue: every task submitted before destruction
/// runs to completion before the workers join.
///
/// Nested-task support: ParallelFor may be called from *inside* a pool
/// task (an interior operator fanning out its children while itself
/// running as a partition worker). The calling thread always participates
/// in its own batch — it claims and runs work items instead of blocking on
/// the queue — so a nested fan-out completes even when every pool worker
/// is busy or the pool has a single thread. No call path ever waits for
/// queue capacity, which is what makes reusing one executor-wide pool
/// across nesting levels deadlock-free.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues `task`; the returned future rethrows the task's exception
  /// (if any) from get(). Unlike ParallelFor, a Submit caller that blocks
  /// on the future does not help drain the queue — do not wait on a
  /// Submit future from inside a pool task.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
  /// If any invocation threw, the first failure (by index — deterministic
  /// regardless of scheduling) is rethrown after every invocation has
  /// finished — no task is left running. The rethrown exception is a
  /// ParallelForTaskError naming the failing index, with the original
  /// exception nested inside.
  /// Safe to call from inside a pool task (see class comment): the caller
  /// claims unstarted indices itself and only sleeps while indices it did
  /// not claim finish on other threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_THREAD_POOL_H_
