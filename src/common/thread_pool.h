#ifndef SIEVE_COMMON_THREAD_POOL_H_
#define SIEVE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sieve {

/// Fixed-size worker pool backing partition-parallel query execution.
/// Tasks are plain callables; Submit returns a future that completes when
/// the task finishes and carries any exception the task threw. The
/// destructor drains the queue: every task submitted before destruction
/// runs to completion before the workers join.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues `task`; the returned future rethrows the task's exception
  /// (if any) from get().
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
  /// If any invocation threw, the first exception (by index) is rethrown
  /// after every task has finished — no task is left running.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_THREAD_POOL_H_
