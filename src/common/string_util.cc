#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sieve {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args);
  return out;
}

}  // namespace sieve
