#ifndef SIEVE_COMMON_FAULT_INJECTION_H_
#define SIEVE_COMMON_FAULT_INJECTION_H_

/// Deterministic fault injection.
///
/// Code under test declares *fault points* — named places where a failure
/// can be simulated — with the SIEVE_FAULT_POINT macro:
///
///   if (SIEVE_FAULT_POINT("mw.rewrite.fail")) {
///     return SIEVE_INJECT_FAULT("mw.rewrite.fail");
///   }
///
/// Tests (or an operator, via the SIEVE_FAULT_SPEC environment variable)
/// arm points on the process-wide registry with a trigger that decides,
/// per hit, whether the fault fires:
///
///   FaultInjector::Instance().Arm("mw.rewrite.fail", FaultTrigger::Nth(3));
///
/// Trigger kinds (all deterministic given the same hit sequence):
///   Off            never fires (same as not armed)
///   Always         fires on every hit
///   Probability    fires with probability p, seeded PRNG per point
///   Nth            fires exactly once, on the Nth hit (1-based)
///   EveryNth       fires on every Nth hit (N, 2N, 3N, ...)
///   FromNth        fires on hit N and every hit after it
///   Range          fires on hits [A, B] inclusive (1-based)
///
/// Spec string syntax (used by LoadSpec / the SIEVE_FAULT_SPEC env var):
///   point=trigger[;point=trigger...]
/// with trigger one of
///   off | always | prob:P[:seed] | nth:N | every:N | from:N | range:A-B
/// e.g.  SIEVE_FAULT_SPEC="server.io.short_read=prob:0.2:7;mw.audit_flush.fail=nth:1"
///
/// The disarmed fast path is one relaxed atomic load (no lock, no map
/// lookup), so fault points are cheap enough for per-batch hot paths.
/// Defining SIEVE_FAULT_INJECTION_DISABLED (CMake option SIEVE_FAULT_INJECTION=OFF)
/// compiles every fault point to a constant false.
///
/// Catalog of points wired through the tree (see ARCHITECTURE.md,
/// "Failure model & graceful degradation", for what each one simulates):
///   server.accept.fail      accepted connection dropped immediately
///   server.io.read_eintr    recv interrupted (EINTR)
///   server.io.short_read    recv clamped to one byte (frame reassembly)
///   server.io.disconnect    peer vanishes mid-frame (recv -> 0)
///   server.io.write_short   send clamped to one byte (partial write loop)
///   server.io.write_error   send fails hard (simulated EPIPE)
///   server.worker.stall     worker sleeps 1ms before serving a request
///   pool.task.stall         thread-pool morsel claim loop sleeps 1ms
///   mw.rewrite.fail         cache-miss rewrite fails under the state gate
///   mw.guard_regen.fail     guard regeneration fails on outdated guards
///   mw.audit_flush.fail     audit ring flush fails (records -> unflushed)
///   exec.morsel.fail        one morsel of a parallel batch fails
///   exec.interrupt          CheckTimeout reports an execution error
///   exec.stall              CheckTimeout sleeps 1ms (slows queries so
///                           deadline tests are deterministic)

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace sieve {

/// Decides, per hit of a fault point, whether the fault fires.
struct FaultTrigger {
  enum class Mode : uint8_t {
    kOff,
    kAlways,
    kProbability,
    kNth,
    kEveryNth,
    kFromNth,
    kRange,
  };

  Mode mode = Mode::kOff;
  double probability = 0.0;  // kProbability
  uint64_t seed = 0;         // kProbability PRNG seed
  uint64_t n = 0;            // kNth / kEveryNth / kFromNth
  uint64_t first = 0;        // kRange: first firing hit (1-based)
  uint64_t last = 0;         // kRange: last firing hit (inclusive)

  static FaultTrigger Off() { return {}; }
  static FaultTrigger Always() {
    FaultTrigger t;
    t.mode = Mode::kAlways;
    return t;
  }
  static FaultTrigger Probability(double p, uint64_t seed = 42) {
    FaultTrigger t;
    t.mode = Mode::kProbability;
    t.probability = p;
    t.seed = seed;
    return t;
  }
  /// Fires exactly once, on the nth hit (1-based).
  static FaultTrigger Nth(uint64_t n) {
    FaultTrigger t;
    t.mode = Mode::kNth;
    t.n = n;
    return t;
  }
  static FaultTrigger EveryNth(uint64_t n) {
    FaultTrigger t;
    t.mode = Mode::kEveryNth;
    t.n = n;
    return t;
  }
  /// Fires on hit n and every hit after it.
  static FaultTrigger FromNth(uint64_t n) {
    FaultTrigger t;
    t.mode = Mode::kFromNth;
    t.n = n;
    return t;
  }
  /// Fires on hits [first, last] inclusive (1-based).
  static FaultTrigger Range(uint64_t first, uint64_t last) {
    FaultTrigger t;
    t.mode = Mode::kRange;
    t.first = first;
    t.last = last;
    return t;
  }
};

/// Hit/fire counters of one armed fault point.
struct FaultPointStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Process-wide fault-point registry. Thread-safe; a single instance
/// lives for the life of the process.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// True when at least one point is armed — the macro fast path. A
  /// relaxed load: a racing Arm() may be missed for a few hits, which is
  /// fine (tests arm before starting traffic).
  static bool Enabled() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms) a point. Re-arming resets its hit/fire counters
  /// and, for probabilistic triggers, reseeds the PRNG. Arming with
  /// Mode::kOff is equivalent to Disarm.
  void Arm(const std::string& point, const FaultTrigger& trigger);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Parses a `point=trigger[;point=trigger...]` spec (syntax above) and
  /// arms every entry. On a malformed entry nothing is armed and an
  /// InvalidArgument status names the offending token.
  Status LoadSpec(const std::string& spec);

  /// Loads the spec from an environment variable (default
  /// SIEVE_FAULT_SPEC). Unset or empty is a no-op OK.
  Status LoadFromEnv(const char* var = "SIEVE_FAULT_SPEC");

  /// Called by SIEVE_FAULT_POINT when Enabled(): counts a hit of `point`
  /// and returns whether the fault fires. Unarmed points return false
  /// without recording anything.
  bool ShouldFire(const char* point);

  /// Counters of an armed point ({0,0} if not armed).
  FaultPointStats stats(const std::string& point) const;
  std::vector<std::string> ArmedPoints() const;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultTrigger trigger;
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  static std::atomic<int> armed_count_;

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
};

/// Arms a point for the lifetime of a scope (test helper).
class ScopedFault {
 public:
  ScopedFault(std::string point, const FaultTrigger& trigger)
      : point_(std::move(point)) {
    FaultInjector::Instance().Arm(point_, trigger);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace sieve

#ifdef SIEVE_FAULT_INJECTION_DISABLED
#define SIEVE_FAULT_POINT(name) (false)
#else
#define SIEVE_FAULT_POINT(name)             \
  (::sieve::FaultInjector::Enabled() &&     \
   ::sieve::FaultInjector::Instance().ShouldFire(name))
#endif

/// The canonical status returned by a firing fault point.
#define SIEVE_INJECT_FAULT(name) \
  ::sieve::Status::ExecutionError("injected fault: " name)

#endif  // SIEVE_COMMON_FAULT_INJECTION_H_
