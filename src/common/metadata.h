#ifndef SIEVE_COMMON_METADATA_H_
#define SIEVE_COMMON_METADATA_H_

#include <string>

namespace sieve {

/// Query metadata QM^i (Section 3.1): the identity of the querier and the
/// declared purpose of the query. Sieve filters the policy corpus by this
/// metadata before any rewriting happens.
struct QueryMetadata {
  std::string querier;
  std::string purpose;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_METADATA_H_
