#ifndef SIEVE_COMMON_RNG_H_
#define SIEVE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace sieve {

/// Deterministic PRNG used by all workload generators so experiments are
/// reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(gen_);
  }

  /// Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed pick in [0, n): low ranks are exponentially more
  /// likely. Used to model device/AP affinity skew.
  int64_t Skewed(int64_t n, double theta = 1.0) {
    double u = NextDouble();
    double x = std::pow(u, theta + 1.0);
    int64_t idx = static_cast<int64_t>(x * static_cast<double>(n));
    if (idx >= n) idx = n - 1;
    return idx;
  }

  /// Gaussian sample.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Picks k distinct elements of [0, n).
  std::vector<int64_t> Sample(int64_t n, int64_t k) {
    std::vector<int64_t> all(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
    for (int64_t i = 0; i < k && i < n; ++i) {
      int64_t j = Uniform(i, n - 1);
      std::swap(all[static_cast<size_t>(i)], all[static_cast<size_t>(j)]);
    }
    all.resize(static_cast<size_t>(k < n ? k : n));
    return all;
  }

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace sieve

#endif  // SIEVE_COMMON_RNG_H_
