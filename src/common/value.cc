#include "common/value.h"

#include <cstdio>
#include <ctime>
#include <functional>

namespace sieve {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTime:
      return "time";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

namespace {

// Type family used for cross-type comparisons: numbers compare numerically,
// everything else compares within its own family only.
int Family(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt:
    case DataType::kDouble:
      return 2;
    case DataType::kTime:
      return 3;
    case DataType::kDate:
      return 4;
    case DataType::kString:
      return 5;
  }
  return 6;
}

// Days-from-civil algorithm (Howard Hinnant): days since 1970-01-01.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Result<Value> Value::ParseTime(const std::string& text) {
  int h = 0, m = 0, s = 0;
  int n = std::sscanf(text.c_str(), "%d:%d:%d", &h, &m, &s);
  if (n < 2 || h < 0 || h > 23 || m < 0 || m > 59 || s < 0 || s > 59) {
    return Status::InvalidArgument("bad time literal: " + text);
  }
  return Value::Time(h * 3600 + m * 60 + s);
}

Result<Value> Value::ParseDate(const std::string& text) {
  int y = 0, mo = 0, d = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%d", &y, &mo, &d);
  if (n != 3 || mo < 1 || mo > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad date literal: " + text);
  }
  return Value::Date(DaysFromCivil(y, static_cast<unsigned>(mo),
                                   static_cast<unsigned>(d)));
}

int Value::Compare(const Value& other) const {
  int fa = Family(type_);
  int fb = Family(other.type_);
  if (fa != fb) return fa < fb ? -1 : 1;
  switch (type_) {
    case DataType::kNull:
      return 0;
    case DataType::kString: {
      int c = str_.compare(other.str_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kInt:
    case DataType::kDouble: {
      if (type_ == DataType::kInt && other.type_ == DataType::kInt) {
        if (num_ != other.num_) return num_ < other.num_ ? -1 : 1;
        return 0;
      }
      double a = AsDouble();
      double b = other.AsDouble();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    default: {
      if (num_ != other.num_) return num_ < other.num_ ? -1 : 1;
      return 0;
    }
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9e3779b9;
    case DataType::kString:
      return std::hash<std::string>()(str_);
    case DataType::kDouble:
      return std::hash<double>()(real_);
    default:
      // Fold the family so that Time(5) and Int(5) do not collide silently
      // in heterogeneous hash tables.
      return std::hash<int64_t>()(num_) ^
             (static_cast<size_t>(Family(type_)) << 1);
  }
}

std::string Value::ToString() const {
  char buf[64];
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return num_ ? "true" : "false";
    case DataType::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(num_));
      return buf;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", real_);
      return buf;
    case DataType::kString:
      return str_;
    case DataType::kTime: {
      int64_t s = num_;
      std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d",
                    static_cast<int>(s / 3600), static_cast<int>((s / 60) % 60),
                    static_cast<int>(s % 60));
      return buf;
    }
    case DataType::kDate: {
      int y;
      unsigned m, d;
      CivilFromDays(num_, &y, &m, &d);
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
      return buf;
    }
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (type_) {
    case DataType::kString:
    case DataType::kTime:
    case DataType::kDate: {
      std::string body = ToString();
      std::string out = "'";
      for (char c : body) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    default:
      return ToString();
  }
}

}  // namespace sieve
