#include "common/fault_injection.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace sieve {

std::atomic<int> FaultInjector::armed_count_{0};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point,
                        const FaultTrigger& trigger) {
  if (trigger.mode == FaultTrigger::Mode::kOff) {
    Disarm(point);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.try_emplace(point);
  it->second.trigger = trigger;
  it->second.rng = Rng(trigger.seed);
  it->second.hits = 0;
  it->second.fires = 0;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

bool FaultInjector::ShouldFire(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& st = it->second;
  ++st.hits;
  bool fire = false;
  switch (st.trigger.mode) {
    case FaultTrigger::Mode::kOff:
      break;
    case FaultTrigger::Mode::kAlways:
      fire = true;
      break;
    case FaultTrigger::Mode::kProbability:
      fire = st.rng.Chance(st.trigger.probability);
      break;
    case FaultTrigger::Mode::kNth:
      fire = st.hits == st.trigger.n;
      break;
    case FaultTrigger::Mode::kEveryNth:
      fire = st.trigger.n > 0 && st.hits % st.trigger.n == 0;
      break;
    case FaultTrigger::Mode::kFromNth:
      fire = st.hits >= st.trigger.n;
      break;
    case FaultTrigger::Mode::kRange:
      fire = st.hits >= st.trigger.first && st.hits <= st.trigger.last;
      break;
  }
  if (fire) ++st.fires;
  return fire;
}

FaultPointStats FaultInjector::stats(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, st] : points_) out.push_back(name);
  return out;
}

namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string Strip(const std::string& s) {
  size_t a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

/// trigger := off | always | prob:P[:seed] | nth:N | every:N | from:N
///          | range:A-B
Status ParseTrigger(const std::string& text, FaultTrigger* out) {
  std::string kind = text;
  std::string args;
  size_t colon = text.find(':');
  if (colon != std::string::npos) {
    kind = text.substr(0, colon);
    args = text.substr(colon + 1);
  }
  if (kind == "off") {
    *out = FaultTrigger::Off();
    return Status::OK();
  }
  if (kind == "always") {
    *out = FaultTrigger::Always();
    return Status::OK();
  }
  if (kind == "prob") {
    std::string p_text = args;
    uint64_t seed = 42;
    size_t c2 = args.find(':');
    if (c2 != std::string::npos) {
      p_text = args.substr(0, c2);
      if (!ParseU64(args.substr(c2 + 1), &seed)) {
        return Status::InvalidArgument("fault spec: bad prob seed in '" +
                                       text + "'");
      }
    }
    double p = 0.0;
    if (!ParseDouble(p_text, &p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "fault spec: prob wants a probability in [0,1], got '" + text + "'");
    }
    *out = FaultTrigger::Probability(p, seed);
    return Status::OK();
  }
  uint64_t n = 0;
  if (kind == "nth" || kind == "every" || kind == "from") {
    if (!ParseU64(args, &n) || n == 0) {
      return Status::InvalidArgument("fault spec: '" + kind +
                                     "' wants a positive count, got '" + text +
                                     "'");
    }
    if (kind == "nth") *out = FaultTrigger::Nth(n);
    if (kind == "every") *out = FaultTrigger::EveryNth(n);
    if (kind == "from") *out = FaultTrigger::FromNth(n);
    return Status::OK();
  }
  if (kind == "range") {
    size_t dash = args.find('-');
    uint64_t a = 0, b = 0;
    if (dash == std::string::npos || !ParseU64(args.substr(0, dash), &a) ||
        !ParseU64(args.substr(dash + 1), &b) || a == 0 || b < a) {
      return Status::InvalidArgument(
          "fault spec: range wants A-B with 1 <= A <= B, got '" + text + "'");
    }
    *out = FaultTrigger::Range(a, b);
    return Status::OK();
  }
  return Status::InvalidArgument("fault spec: unknown trigger '" + text + "'");
}

}  // namespace

Status FaultInjector::LoadSpec(const std::string& spec) {
  // Parse everything first so a malformed entry arms nothing.
  std::vector<std::pair<std::string, FaultTrigger>> parsed;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t semi = spec.find(';', start);
    std::string entry = Strip(
        semi == std::string::npos ? spec.substr(start)
                                  : spec.substr(start, semi - start));
    start = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "fault spec: entry '" + entry + "' lacks '=' (want point=trigger)");
    }
    std::string point = Strip(entry.substr(0, eq));
    if (point.empty()) {
      return Status::InvalidArgument("fault spec: empty point name in '" +
                                     entry + "'");
    }
    FaultTrigger trigger;
    SIEVE_RETURN_IF_ERROR(ParseTrigger(Strip(entry.substr(eq + 1)), &trigger));
    parsed.emplace_back(std::move(point), trigger);
  }
  for (const auto& [point, trigger] : parsed) Arm(point, trigger);
  return Status::OK();
}

Status FaultInjector::LoadFromEnv(const char* var) {
  const char* spec = std::getenv(var);
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return LoadSpec(spec);
}

}  // namespace sieve
