#ifndef SIEVE_PARSER_PARSER_H_
#define SIEVE_PARSER_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/lexer.h"

namespace sieve {

/// Recursive-descent parser for the SQL subset Sieve works with:
///
///   [WITH name AS (select), ...]
///   SELECT {* | item[, ...]} FROM table [AS a] [FORCE INDEX (...)][, ...]
///   [WHERE expr] [GROUP BY cols] [UNION [ALL] select]
///
/// Expressions support AND/OR/NOT, comparisons, BETWEEN, [NOT] IN (list),
/// UDF calls, qualified columns, correlated scalar subqueries
/// ("(SELECT ...)" in value position, captured as raw text and executed by
/// the engine per outer row), and prepared-statement placeholders: each
/// positional `?` takes the next parameter slot, every occurrence of the
/// same named `:name` (case-insensitive) shares one slot. Placeholders
/// inside scalar subqueries are not supported (the subquery text is
/// re-parsed per outer row, after binding has already happened).
class Parser {
 public:
  /// Parses a full SELECT statement.
  static Result<SelectStmtPtr> Parse(const std::string& sql);

  /// Parses a standalone boolean/scalar expression (used for persisted
  /// policy conditions whose values are stored as text).
  static Result<ExprPtr> ParseExpression(const std::string& text);

 private:
  Parser(const std::string* source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const;
  bool MatchKeyword(const std::string& kw);
  Status ExpectKeyword(const std::string& kw);
  bool MatchSymbol(const std::string& sym);
  Status ExpectSymbol(const std::string& sym);

  Result<SelectStmtPtr> ParseSelectStmt();
  Result<SelectStmtPtr> ParseSelectCore();
  Result<SelectItem> ParseSelectItem();
  Result<TableRef> ParseTableRef();
  Result<std::string> ParseIdentifier();

  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParsePrimary();

  /// Token index of the ')' matching the '(' at `open_idx`.
  Result<size_t> FindMatchingParen(size_t open_idx) const;

  const std::string* source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // Parameter slot assignment (one counter per statement: nested SELECT
  // arms and CTE bodies share the numbering).
  size_t next_param_slot_ = 0;
  std::map<std::string, size_t> named_param_slots_;  // lower-cased name
};

}  // namespace sieve

#endif  // SIEVE_PARSER_PARSER_H_
