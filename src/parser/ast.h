#ifndef SIEVE_PARSER_AST_H_
#define SIEVE_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace sieve {

struct SelectStmt;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;

/// Aggregate functions supported in the SELECT list.
enum class AggFn { kNone, kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One SELECT-list item: plain expression or aggregate over an expression.
struct SelectItem {
  ExprPtr expr;       // null for COUNT(*)
  AggFn agg = AggFn::kNone;
  std::string alias;  // output column name; derived when empty

  std::string ToSql() const;
  /// Output column name: alias, else the expression rendering.
  std::string OutputName() const;
};

/// Index usage hints — the extensibility feature Sieve leans on in MySQL-like
/// engines (Section 5.3): FORCE INDEX(col...) pins the access path to an
/// index; USE INDEX() tells the optimizer to ignore all indexes (linear scan).
struct IndexHint {
  enum class Kind { kNone, kForceIndex, kIgnoreAllIndexes };
  Kind kind = Kind::kNone;
  std::vector<std::string> columns;  // indexed columns for kForceIndex

  std::string ToSql() const;
};

/// FROM-clause entry: base table or derived table (subquery), with alias and
/// optional index hint.
struct TableRef {
  std::string table_name;   // empty for derived tables
  SelectStmtPtr subquery;   // non-null for derived tables
  std::string alias;        // may be empty for base tables
  IndexHint hint;

  std::string EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
  std::string ToSql() const;
};

/// WITH-clause entry.
struct CommonTableExpr {
  std::string name;
  SelectStmtPtr query;
};

/// Set operation linking two SELECT cores.
enum class SetOpKind {
  kUnion,     ///< UNION (distinct)
  kUnionAll,  ///< UNION ALL
  kExcept,    ///< EXCEPT / MINUS — the non-monotonic operator of §3.1
};

/// A (possibly compound) SELECT statement:
///   [WITH ctes] SELECT items FROM refs [WHERE e] [GROUP BY cols]
///   [{UNION [ALL] | EXCEPT | MINUS} select]
struct SelectStmt {
  std::vector<CommonTableExpr> ctes;
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                    // may be null
  std::vector<ExprPtr> group_by;    // column refs
  SelectStmtPtr union_next;         // chained set-op arm
  bool union_all = false;           // legacy view of set_op (kUnionAll)
  SetOpKind set_op = SetOpKind::kUnion;  // link kind to union_next

  bool HasAggregates() const;
  std::string ToSql() const;

  /// Deep copy (expressions cloned, nested statements cloned recursively).
  SelectStmtPtr Clone() const;
};

/// The parameter signature of a parsed statement: one entry per slot, in
/// slot order — the lower-cased name for `:name` parameters, "" for
/// positional `?`. Fails on inconsistent slot numbering (never produced by
/// the parser; guards against hand-built ASTs).
Result<std::vector<std::string>> CollectParameterSlots(const SelectStmt& stmt);

/// Replaces every ParameterExpr in the statement (WHERE clauses, select
/// items, GROUP BY, CTE bodies, derived tables, set-op arms) with the
/// literal `params[slot]`. The statement must be a private clone — callers
/// must not bind a shared template in place. Fails with kBindError when a
/// slot has no value.
Status BindParameters(SelectStmt* stmt, const std::vector<Value>& params);

}  // namespace sieve

#endif  // SIEVE_PARSER_AST_H_
