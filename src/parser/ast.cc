#include "parser/ast.h"

#include <functional>
#include <optional>

#include "common/string_util.h"

namespace sieve {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "";
    case AggFn::kCount:
    case AggFn::kCountStar:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "";
}

std::string SelectItem::ToSql() const {
  std::string out;
  if (agg == AggFn::kCountStar) {
    out = "COUNT(*)";
  } else if (agg != AggFn::kNone) {
    out = std::string(AggFnName(agg)) + "(" + expr->ToSql() + ")";
  } else {
    out = expr->ToSql();
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (agg == AggFn::kCountStar) return "count";
  if (agg != AggFn::kNone) {
    return ToLower(AggFnName(agg)) + "_" + expr->ToSql();
  }
  return expr->ToSql();
}

std::string IndexHint::ToSql() const {
  switch (kind) {
    case Kind::kNone:
      return "";
    case Kind::kForceIndex:
      return " FORCE INDEX (" + Join(columns, ", ") + ")";
    case Kind::kIgnoreAllIndexes:
      return " USE INDEX ()";
  }
  return "";
}

std::string TableRef::ToSql() const {
  std::string out;
  if (subquery != nullptr) {
    out = "(" + subquery->ToSql() + ")";
  } else {
    out = table_name;
  }
  if (!alias.empty()) out += " AS " + alias;
  out += hint.ToSql();
  return out;
}

bool SelectStmt::HasAggregates() const {
  for (const auto& item : items) {
    if (item.agg != AggFn::kNone) return true;
  }
  return false;
}

std::string SelectStmt::ToSql() const {
  std::string out;
  if (!ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < ctes.size(); ++i) {
      if (i > 0) out += ", ";
      out += ctes[i].name + " AS (" + ctes[i].query->ToSql() + ")";
    }
    out += " ";
  }
  out += "SELECT ";
  if (select_star) {
    out += "*";
  } else {
    std::vector<std::string> parts;
    parts.reserve(items.size());
    for (const auto& item : items) parts.push_back(item.ToSql());
    out += Join(parts, ", ");
  }
  if (!from.empty()) {
    out += " FROM ";
    std::vector<std::string> parts;
    parts.reserve(from.size());
    for (const auto& ref : from) parts.push_back(ref.ToSql());
    out += Join(parts, ", ");
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    std::vector<std::string> parts;
    parts.reserve(group_by.size());
    for (const auto& g : group_by) parts.push_back(g->ToSql());
    out += Join(parts, ", ");
  }
  if (union_next != nullptr) {
    switch (set_op) {
      case SetOpKind::kUnion:
        out += " UNION ";
        break;
      case SetOpKind::kUnionAll:
        out += " UNION ALL ";
        break;
      case SetOpKind::kExcept:
        out += " EXCEPT ";
        break;
    }
    out += union_next->ToSql();
  }
  return out;
}

namespace {

// Applies `fn` to every ExprPtr slot in the tree rooted at *slot (children
// first, so `fn` may replace the node it is handed without re-walking).
// The callback receives the slot and may reseat it.
Status VisitExprSlots(ExprPtr* slot, const std::function<Status(ExprPtr*)>& fn) {
  Expr* e = slot->get();
  switch (e->kind()) {
    case ExprKind::kComparison: {
      auto* c = static_cast<ComparisonExpr*>(e);
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&c->mutable_left(), fn));
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&c->mutable_right(), fn));
      break;
    }
    case ExprKind::kBetween: {
      auto* b = static_cast<BetweenExpr*>(e);
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&b->mutable_input(), fn));
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&b->mutable_lo(), fn));
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&b->mutable_hi(), fn));
      break;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&in->mutable_input(), fn));
      for (auto& item : in->mutable_items()) {
        SIEVE_RETURN_IF_ERROR(VisitExprSlots(&item, fn));
      }
      break;
    }
    case ExprKind::kAnd:
      for (auto& c : static_cast<AndExpr*>(e)->mutable_children()) {
        SIEVE_RETURN_IF_ERROR(VisitExprSlots(&c, fn));
      }
      break;
    case ExprKind::kOr:
      for (auto& c : static_cast<OrExpr*>(e)->mutable_children()) {
        SIEVE_RETURN_IF_ERROR(VisitExprSlots(&c, fn));
      }
      break;
    case ExprKind::kNot:
      SIEVE_RETURN_IF_ERROR(
          VisitExprSlots(&static_cast<NotExpr*>(e)->mutable_child(), fn));
      break;
    case ExprKind::kUdfCall:
      for (auto& a : static_cast<UdfCallExpr*>(e)->mutable_args()) {
        SIEVE_RETURN_IF_ERROR(VisitExprSlots(&a, fn));
      }
      break;
    default:  // leaves: literal, column ref, parameter, subquery text
      break;
  }
  return fn(slot);
}

// Applies `fn` to every expression slot of the statement: select items,
// WHERE, GROUP BY, CTE bodies, derived tables and all set-op arms.
Status VisitStmtExprSlots(SelectStmt* stmt,
                          const std::function<Status(ExprPtr*)>& fn) {
  for (SelectStmt* arm = stmt; arm != nullptr; arm = arm->union_next.get()) {
    for (auto& cte : arm->ctes) {
      SIEVE_RETURN_IF_ERROR(VisitStmtExprSlots(cte.query.get(), fn));
    }
    for (auto& item : arm->items) {
      if (item.expr != nullptr) {
        SIEVE_RETURN_IF_ERROR(VisitExprSlots(&item.expr, fn));
      }
    }
    for (auto& ref : arm->from) {
      if (ref.subquery != nullptr) {
        SIEVE_RETURN_IF_ERROR(VisitStmtExprSlots(ref.subquery.get(), fn));
      }
    }
    if (arm->where != nullptr) {
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&arm->where, fn));
    }
    for (auto& g : arm->group_by) {
      SIEVE_RETURN_IF_ERROR(VisitExprSlots(&g, fn));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::string>> CollectParameterSlots(const SelectStmt& stmt) {
  std::vector<std::optional<std::string>> slots;
  // The walk only reads; VisitStmtExprSlots is shared with BindParameters,
  // which mutates, hence the const_cast.
  Status st = VisitStmtExprSlots(
      const_cast<SelectStmt*>(&stmt), [&slots](ExprPtr* slot) -> Status {
        if ((*slot)->kind() != ExprKind::kParameter) return Status::OK();
        const auto& param = static_cast<const ParameterExpr&>(**slot);
        if (param.slot() >= slots.size()) slots.resize(param.slot() + 1);
        std::optional<std::string>& name = slots[param.slot()];
        if (!name.has_value() || *name == param.name()) {
          name = param.name();
          return Status::OK();
        }
        return Status::InvalidArgument(
            "parameter slot " + std::to_string(param.slot()) +
            " bound to two names: '" + *name + "' vs '" + param.name() + "'");
      });
  SIEVE_RETURN_IF_ERROR(st);
  std::vector<std::string> out;
  out.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].has_value()) {
      return Status::InvalidArgument("parameter slot " + std::to_string(i) +
                                     " never appears in the statement");
    }
    out.push_back(std::move(*slots[i]));
  }
  return out;
}

Status BindParameters(SelectStmt* stmt, const std::vector<Value>& params) {
  return VisitStmtExprSlots(stmt, [&params](ExprPtr* slot) -> Status {
    if ((*slot)->kind() != ExprKind::kParameter) return Status::OK();
    const auto& param = static_cast<const ParameterExpr&>(**slot);
    if (param.slot() >= params.size()) {
      return Status::BindError("no value bound for parameter " +
                               param.ToSql() + " (slot " +
                               std::to_string(param.slot()) + ")");
    }
    *slot = MakeLiteral(params[param.slot()]);
    return Status::OK();
  });
}

SelectStmtPtr SelectStmt::Clone() const {
  auto out = std::make_shared<SelectStmt>();
  out->ctes.reserve(ctes.size());
  for (const auto& cte : ctes) {
    out->ctes.push_back({cte.name, cte.query->Clone()});
  }
  out->select_star = select_star;
  out->items.reserve(items.size());
  for (const auto& item : items) {
    SelectItem copy = item;
    if (copy.expr != nullptr) copy.expr = copy.expr->Clone();
    out->items.push_back(std::move(copy));
  }
  out->from.reserve(from.size());
  for (const auto& ref : from) {
    TableRef copy;
    copy.table_name = ref.table_name;
    copy.alias = ref.alias;
    copy.hint = ref.hint;
    if (ref.subquery != nullptr) copy.subquery = ref.subquery->Clone();
    out->from.push_back(std::move(copy));
  }
  if (where != nullptr) out->where = where->Clone();
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (union_next != nullptr) out->union_next = union_next->Clone();
  out->union_all = union_all;
  out->set_op = set_op;
  return out;
}

}  // namespace sieve
