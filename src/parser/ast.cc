#include "parser/ast.h"

#include "common/string_util.h"

namespace sieve {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kNone:
      return "";
    case AggFn::kCount:
    case AggFn::kCountStar:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "";
}

std::string SelectItem::ToSql() const {
  std::string out;
  if (agg == AggFn::kCountStar) {
    out = "COUNT(*)";
  } else if (agg != AggFn::kNone) {
    out = std::string(AggFnName(agg)) + "(" + expr->ToSql() + ")";
  } else {
    out = expr->ToSql();
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (agg == AggFn::kCountStar) return "count";
  if (agg != AggFn::kNone) {
    return ToLower(AggFnName(agg)) + "_" + expr->ToSql();
  }
  return expr->ToSql();
}

std::string IndexHint::ToSql() const {
  switch (kind) {
    case Kind::kNone:
      return "";
    case Kind::kForceIndex:
      return " FORCE INDEX (" + Join(columns, ", ") + ")";
    case Kind::kIgnoreAllIndexes:
      return " USE INDEX ()";
  }
  return "";
}

std::string TableRef::ToSql() const {
  std::string out;
  if (subquery != nullptr) {
    out = "(" + subquery->ToSql() + ")";
  } else {
    out = table_name;
  }
  if (!alias.empty()) out += " AS " + alias;
  out += hint.ToSql();
  return out;
}

bool SelectStmt::HasAggregates() const {
  for (const auto& item : items) {
    if (item.agg != AggFn::kNone) return true;
  }
  return false;
}

std::string SelectStmt::ToSql() const {
  std::string out;
  if (!ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < ctes.size(); ++i) {
      if (i > 0) out += ", ";
      out += ctes[i].name + " AS (" + ctes[i].query->ToSql() + ")";
    }
    out += " ";
  }
  out += "SELECT ";
  if (select_star) {
    out += "*";
  } else {
    std::vector<std::string> parts;
    parts.reserve(items.size());
    for (const auto& item : items) parts.push_back(item.ToSql());
    out += Join(parts, ", ");
  }
  if (!from.empty()) {
    out += " FROM ";
    std::vector<std::string> parts;
    parts.reserve(from.size());
    for (const auto& ref : from) parts.push_back(ref.ToSql());
    out += Join(parts, ", ");
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    std::vector<std::string> parts;
    parts.reserve(group_by.size());
    for (const auto& g : group_by) parts.push_back(g->ToSql());
    out += Join(parts, ", ");
  }
  if (union_next != nullptr) {
    switch (set_op) {
      case SetOpKind::kUnion:
        out += " UNION ";
        break;
      case SetOpKind::kUnionAll:
        out += " UNION ALL ";
        break;
      case SetOpKind::kExcept:
        out += " EXCEPT ";
        break;
    }
    out += union_next->ToSql();
  }
  return out;
}

SelectStmtPtr SelectStmt::Clone() const {
  auto out = std::make_shared<SelectStmt>();
  out->ctes.reserve(ctes.size());
  for (const auto& cte : ctes) {
    out->ctes.push_back({cte.name, cte.query->Clone()});
  }
  out->select_star = select_star;
  out->items.reserve(items.size());
  for (const auto& item : items) {
    SelectItem copy = item;
    if (copy.expr != nullptr) copy.expr = copy.expr->Clone();
    out->items.push_back(std::move(copy));
  }
  out->from.reserve(from.size());
  for (const auto& ref : from) {
    TableRef copy;
    copy.table_name = ref.table_name;
    copy.alias = ref.alias;
    copy.hint = ref.hint;
    if (ref.subquery != nullptr) copy.subquery = ref.subquery->Clone();
    out->from.push_back(std::move(copy));
  }
  if (where != nullptr) out->where = where->Clone();
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (union_next != nullptr) out->union_next = union_next->Clone();
  out->union_all = union_all;
  out->set_op = set_op;
  return out;
}

}  // namespace sieve
