#ifndef SIEVE_PARSER_LEXER_H_
#define SIEVE_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sieve {

enum class TokenType {
  kIdentifier,  // keywords are identifiers; the parser matches them
  kInteger,
  kDouble,
  kString,   // quoted '...'
  kSymbol,   // operators and punctuation: = != <> < <= > >= ( ) , . * ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/symbol text or unquoted string body
  size_t begin = 0;   // byte offset in the source (for subquery slicing)
  size_t end = 0;     // one past the last byte
};

/// Tokenizes a SQL string. Keeps source offsets so the parser can slice out
/// the raw text of nested subqueries.
class Lexer {
 public:
  static Result<std::vector<Token>> Tokenize(const std::string& sql);
};

}  // namespace sieve

#endif  // SIEVE_PARSER_LEXER_H_
