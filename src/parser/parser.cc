#include "parser/parser.h"

#include <cstdlib>

#include "common/string_util.h"

namespace sieve {

namespace {

bool IsAggName(const std::string& name, AggFn* fn) {
  if (EqualsIgnoreCase(name, "count")) {
    *fn = AggFn::kCount;
    return true;
  }
  if (EqualsIgnoreCase(name, "sum")) {
    *fn = AggFn::kSum;
    return true;
  }
  if (EqualsIgnoreCase(name, "avg")) {
    *fn = AggFn::kAvg;
    return true;
  }
  if (EqualsIgnoreCase(name, "min")) {
    *fn = AggFn::kMin;
    return true;
  }
  if (EqualsIgnoreCase(name, "max")) {
    *fn = AggFn::kMax;
    return true;
  }
  return false;
}

// Keywords that terminate an expression / cannot start a primary.
bool IsReservedKeyword(const std::string& word) {
  static const char* kReserved[] = {
      "select", "from",  "where", "group",  "by",    "union", "all",
      "and",    "or",    "not",   "in",     "between", "as",  "with",
      "force",  "use",   "index", "join",   "on",     "except", "minus",
  };
  for (const char* kw : kReserved) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

}  // namespace

Result<SelectStmtPtr> Parser::Parse(const std::string& sql) {
  SIEVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(sql));
  Parser parser(&sql, std::move(tokens));
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, parser.ParseSelectStmt());
  parser.MatchSymbol(";");
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after statement: '" +
                              parser.Peek().text + "'");
  }
  return stmt;
}

Result<ExprPtr> Parser::ParseExpression(const std::string& text) {
  SIEVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(text));
  Parser parser(&text, std::move(tokens));
  SIEVE_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseOr());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after expression: '" +
                              parser.Peek().text + "'");
  }
  return expr;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) return tokens_.back();
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

bool Parser::PeekKeyword(const std::string& kw, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
}

bool Parser::MatchKeyword(const std::string& kw) {
  if (PeekKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const std::string& kw) {
  if (!MatchKeyword(kw)) {
    return Status::ParseError("expected " + kw + " but found '" + Peek().text +
                              "'");
  }
  return Status::OK();
}

bool Parser::MatchSymbol(const std::string& sym) {
  const Token& t = Peek();
  if (t.type == TokenType::kSymbol && t.text == sym) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectSymbol(const std::string& sym) {
  if (!MatchSymbol(sym)) {
    return Status::ParseError("expected '" + sym + "' but found '" +
                              Peek().text + "'");
  }
  return Status::OK();
}

Result<std::string> Parser::ParseIdentifier() {
  const Token& t = Peek();
  if (t.type != TokenType::kIdentifier) {
    return Status::ParseError("expected identifier but found '" + t.text + "'");
  }
  Advance();
  return t.text;
}

Result<size_t> Parser::FindMatchingParen(size_t open_idx) const {
  int depth = 0;
  for (size_t i = open_idx; i < tokens_.size(); ++i) {
    const Token& t = tokens_[i];
    if (t.type == TokenType::kSymbol) {
      if (t.text == "(") ++depth;
      if (t.text == ")") {
        --depth;
        if (depth == 0) return i;
      }
    }
  }
  return Status::ParseError("unbalanced parentheses");
}

Result<SelectStmtPtr> Parser::ParseSelectStmt() {
  auto stmt = std::make_shared<SelectStmt>();
  if (MatchKeyword("with")) {
    do {
      CommonTableExpr cte;
      SIEVE_ASSIGN_OR_RETURN(cte.name, ParseIdentifier());
      SIEVE_RETURN_IF_ERROR(ExpectKeyword("as"));
      SIEVE_RETURN_IF_ERROR(ExpectSymbol("("));
      SIEVE_ASSIGN_OR_RETURN(cte.query, ParseSelectStmt());
      SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->ctes.push_back(std::move(cte));
    } while (MatchSymbol(","));
  }
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr core, ParseSelectCore());
  core->ctes = std::move(stmt->ctes);
  // Set-operation chain: UNION [ALL] | EXCEPT | MINUS.
  SelectStmt* tail = core.get();
  while (PeekKeyword("union") || PeekKeyword("except") ||
         PeekKeyword("minus")) {
    SetOpKind op;
    if (MatchKeyword("union")) {
      op = MatchKeyword("all") ? SetOpKind::kUnionAll : SetOpKind::kUnion;
    } else {
      Advance();  // EXCEPT or MINUS
      op = SetOpKind::kExcept;
    }
    SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr next, ParseSelectCore());
    tail->union_next = next;
    tail->set_op = op;
    tail->union_all = op == SetOpKind::kUnionAll;
    tail = next.get();
  }
  return core;
}

Result<SelectStmtPtr> Parser::ParseSelectCore() {
  SIEVE_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto stmt = std::make_shared<SelectStmt>();
  if (MatchSymbol("*")) {
    stmt->select_star = true;
  } else {
    do {
      SIEVE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("from")) {
    do {
      SIEVE_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("where")) {
    SIEVE_ASSIGN_OR_RETURN(stmt->where, ParseOr());
  }
  if (PeekKeyword("group")) {
    Advance();
    SIEVE_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      SIEVE_ASSIGN_OR_RETURN(ExprPtr col, ParsePrimary());
      if (col->kind() != ExprKind::kColumnRef) {
        return Status::ParseError("GROUP BY supports column references only");
      }
      stmt->group_by.push_back(std::move(col));
    } while (MatchSymbol(","));
  }
  return stmt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // Aggregate function?
  const Token& t = Peek();
  AggFn fn;
  if (t.type == TokenType::kIdentifier && IsAggName(t.text, &fn) &&
      Peek(1).type == TokenType::kSymbol && Peek(1).text == "(") {
    Advance();  // function name
    Advance();  // '('
    if (fn == AggFn::kCount && MatchSymbol("*")) {
      item.agg = AggFn::kCountStar;
    } else {
      item.agg = fn;
      SIEVE_ASSIGN_OR_RETURN(item.expr, ParseOr());
    }
    SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
  } else {
    SIEVE_ASSIGN_OR_RETURN(item.expr, ParseOr());
  }
  if (MatchKeyword("as")) {
    SIEVE_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchSymbol("(")) {
    SIEVE_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
    SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
  } else {
    SIEVE_ASSIGN_OR_RETURN(ref.table_name, ParseIdentifier());
  }
  if (MatchKeyword("as")) {
    SIEVE_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
  } else if (Peek().type == TokenType::kIdentifier &&
             !IsReservedKeyword(Peek().text)) {
    // Bare alias: "WiFi_Dataset W".
    SIEVE_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
  }
  // Index hints.
  if (PeekKeyword("force")) {
    Advance();
    SIEVE_RETURN_IF_ERROR(ExpectKeyword("index"));
    SIEVE_RETURN_IF_ERROR(ExpectSymbol("("));
    ref.hint.kind = IndexHint::Kind::kForceIndex;
    if (!MatchSymbol(")")) {
      do {
        SIEVE_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        ref.hint.columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
  } else if (PeekKeyword("use")) {
    Advance();
    SIEVE_RETURN_IF_ERROR(ExpectKeyword("index"));
    SIEVE_RETURN_IF_ERROR(ExpectSymbol("("));
    if (!MatchSymbol(")")) {
      return Status::ParseError(
          "USE INDEX with a column list is not supported; use USE INDEX () to "
          "disable indexes");
    }
    ref.hint.kind = IndexHint::Kind::kIgnoreAllIndexes;
  }
  return ref;
}

Result<ExprPtr> Parser::ParseOr() {
  SIEVE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  if (!PeekKeyword("or")) return left;
  std::vector<ExprPtr> children;
  children.push_back(std::move(left));
  while (MatchKeyword("or")) {
    SIEVE_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
    children.push_back(std::move(next));
  }
  return MakeOr(std::move(children));
}

Result<ExprPtr> Parser::ParseAnd() {
  SIEVE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  if (!PeekKeyword("and")) return left;
  std::vector<ExprPtr> children;
  children.push_back(std::move(left));
  while (MatchKeyword("and")) {
    SIEVE_ASSIGN_OR_RETURN(ExprPtr next, ParseNot());
    children.push_back(std::move(next));
  }
  return MakeAnd(std::move(children));
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    SIEVE_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return MakeNot(std::move(child));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  SIEVE_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());

  // BETWEEN lo AND hi.
  if (PeekKeyword("between")) {
    Advance();
    SIEVE_ASSIGN_OR_RETURN(ExprPtr lo, ParsePrimary());
    SIEVE_RETURN_IF_ERROR(ExpectKeyword("and"));
    SIEVE_ASSIGN_OR_RETURN(ExprPtr hi, ParsePrimary());
    return std::make_shared<BetweenExpr>(std::move(left), std::move(lo),
                                         std::move(hi));
  }

  // [NOT] IN (list).
  bool negated = false;
  if (PeekKeyword("not") && PeekKeyword("in", 1)) {
    Advance();
    negated = true;
  }
  if (PeekKeyword("in")) {
    Advance();
    SIEVE_RETURN_IF_ERROR(ExpectSymbol("("));
    if (PeekKeyword("select")) {
      return Status::ParseError("IN (SELECT ...) subqueries are not supported");
    }
    std::vector<ExprPtr> items;
    do {
      SIEVE_ASSIGN_OR_RETURN(ExprPtr item, ParsePrimary());
      items.push_back(std::move(item));
    } while (MatchSymbol(","));
    SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return std::make_shared<InListExpr>(std::move(left), std::move(items),
                                        negated);
  }
  if (negated) {
    return Status::ParseError("dangling NOT before a non-IN predicate");
  }

  // Comparison.
  const Token& t = Peek();
  if (t.type == TokenType::kSymbol &&
      (t.text == "=" || t.text == "!=" || t.text == "<>" || t.text == "<" ||
       t.text == "<=" || t.text == ">" || t.text == ">=")) {
    Advance();
    SIEVE_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(t.text));
    SIEVE_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
    return MakeCompare(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();

  if (t.type == TokenType::kInteger) {
    Advance();
    return MakeLiteral(Value::Int(std::strtoll(t.text.c_str(), nullptr, 10)));
  }
  if (t.type == TokenType::kDouble) {
    Advance();
    return MakeLiteral(Value::Double(std::strtod(t.text.c_str(), nullptr)));
  }
  if (t.type == TokenType::kString) {
    Advance();
    return MakeLiteral(Value::String(t.text));
  }

  // Prepared-statement placeholders.
  if (t.type == TokenType::kSymbol && t.text == "?") {
    Advance();
    return std::make_shared<ParameterExpr>(next_param_slot_++, "");
  }
  if (t.type == TokenType::kSymbol && t.text == ":") {
    Advance();
    SIEVE_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    std::string key = ToLower(name);
    auto it = named_param_slots_.find(key);
    if (it == named_param_slots_.end()) {
      it = named_param_slots_.emplace(key, next_param_slot_++).first;
    }
    return std::make_shared<ParameterExpr>(it->second, key);
  }

  if (t.type == TokenType::kSymbol && t.text == "(") {
    // Scalar subquery in value position: capture raw text.
    if (PeekKeyword("select", 1)) {
      SIEVE_ASSIGN_OR_RETURN(size_t close, FindMatchingParen(pos_));
      size_t text_begin = tokens_[pos_].end;
      size_t text_end = tokens_[close].begin;
      std::string body = source_->substr(text_begin, text_end - text_begin);
      pos_ = close + 1;
      return std::make_shared<SubqueryExpr>(body);
    }
    Advance();
    SIEVE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
    SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }

  if (t.type == TokenType::kIdentifier) {
    if (EqualsIgnoreCase(t.text, "true")) {
      Advance();
      return MakeLiteral(Value::Bool(true));
    }
    if (EqualsIgnoreCase(t.text, "false")) {
      Advance();
      return MakeLiteral(Value::Bool(false));
    }
    if (EqualsIgnoreCase(t.text, "null")) {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (IsReservedKeyword(t.text)) {
      return Status::ParseError("unexpected keyword '" + t.text +
                                "' in expression");
    }
    Advance();
    std::string first = t.text;
    // UDF call.
    if (Peek().type == TokenType::kSymbol && Peek().text == "(") {
      Advance();
      std::vector<ExprPtr> args;
      if (!MatchSymbol(")")) {
        do {
          SIEVE_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
          args.push_back(std::move(arg));
        } while (MatchSymbol(","));
        SIEVE_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return std::make_shared<UdfCallExpr>(first, std::move(args));
    }
    // Qualified column.
    if (MatchSymbol(".")) {
      SIEVE_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      return MakeColumn(first, col);
    }
    return MakeColumn(first);
  }

  return Status::ParseError("unexpected token '" + t.text +
                            "' in expression");
}

}  // namespace sieve
