#include "parser/lexer.h"

#include <cctype>

namespace sieve {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lexer::Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    // Block comment (standard SQL, non-nesting).
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at offset " +
                                  std::to_string(start));
      }
      i += 2;
      continue;
    }
    size_t begin = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      tokens.push_back(
          {TokenType::kIdentifier, sql.substr(begin, i - begin), begin, i});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') {
          // "1..2" or a trailing dot would be malformed; a single dot between
          // digits makes it a double literal.
          if (is_double) break;
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
            break;
          }
          is_double = true;
        }
        ++i;
      }
      tokens.push_back({is_double ? TokenType::kDouble : TokenType::kInteger,
                        sql.substr(begin, i - begin), begin, i});
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {
            body += quote;
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(begin));
      }
      tokens.push_back({TokenType::kString, body, begin, i});
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        i += 2;
        tokens.push_back({TokenType::kSymbol, two, begin, i});
        continue;
      }
    }
    // '?' and ':' are the prepared-statement placeholder markers
    // (positional `?`, named `:name`); the parser assembles them.
    if (std::string("=<>(),.*;+-/?:").find(c) != std::string::npos) {
      ++i;
      tokens.push_back({TokenType::kSymbol, std::string(1, c), begin, i});
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  tokens.push_back({TokenType::kEnd, "", n, n});
  return tokens;
}

}  // namespace sieve
