#ifndef SIEVE_INDEX_HISTOGRAM_H_
#define SIEVE_INDEX_HISTOGRAM_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace sieve {

/// Equi-depth histogram over one column, built from all column values (or a
/// sample). This is the statistics substrate behind the paper's ρ(pred)
/// cardinality estimates (Section 4's cost model footnote: "estimated using
/// histograms maintained by the database").
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds the histogram with roughly `num_buckets` equi-depth buckets.
  /// `values` need not be sorted; a copy is sorted internally.
  static EquiDepthHistogram Build(std::vector<Value> values, int num_buckets);

  size_t total_count() const { return total_count_; }
  size_t distinct_count() const { return distinct_count_; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Estimated fraction of rows with column == v.
  double EstimateEq(const Value& v) const;

  /// Estimated fraction of rows with column in the (optionally open) range.
  double EstimateRange(const std::optional<Value>& lo, bool lo_inclusive,
                       const std::optional<Value>& hi, bool hi_inclusive) const;

  std::string ToString() const;

 private:
  struct Bucket {
    Value lo;              // inclusive lower bound
    Value hi;              // inclusive upper bound
    size_t count = 0;      // rows in bucket
    size_t distinct = 0;   // distinct values in bucket
  };

  // Fraction of `bucket` estimated to lie strictly below `v` (or up to and
  // including it when `inclusive`).
  double BucketFractionBelow(const Bucket& bucket, const Value& v,
                             bool inclusive) const;

  std::vector<Bucket> buckets_;
  size_t total_count_ = 0;
  size_t distinct_count_ = 0;
};

}  // namespace sieve

#endif  // SIEVE_INDEX_HISTOGRAM_H_
