#include "index/bptree.h"

#include <algorithm>
#include <limits>

namespace sieve {

namespace {
constexpr RowId kMinRow = std::numeric_limits<RowId>::min();
}  // namespace

struct BPlusTree::Node {
  bool is_leaf = false;
  InternalNode* parent = nullptr;
  virtual ~Node() = default;

 protected:
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BPlusTree::LeafNode : Node {
  LeafNode() : Node(true) {}
  std::vector<Entry> entries;
  LeafNode* next = nullptr;
};

struct BPlusTree::InternalNode : Node {
  InternalNode() : Node(false) {}
  // keys[i] separates children[i] (strictly less) from children[i+1] (>=).
  std::vector<Entry> keys;
  std::vector<Node*> children;
};

BPlusTree::BPlusTree() { root_ = new LeafNode(); }

BPlusTree::~BPlusTree() { FreeNode(root_); }

void BPlusTree::FreeNode(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* in = static_cast<InternalNode*>(node);
    for (Node* child : in->children) FreeNode(child);
  }
  delete node;
}

int BPlusTree::CompareEntry(const Value& a_key, RowId a_row, const Value& b_key,
                            RowId b_row) {
  int c = a_key.Compare(b_key);
  if (c != 0) return c;
  if (a_row != b_row) return a_row < b_row ? -1 : 1;
  return 0;
}

BPlusTree::LeafNode* BPlusTree::FindLeaf(const Value& key, RowId row_id) const {
  Node* node = root_;
  while (!node->is_leaf) {
    auto* in = static_cast<InternalNode*>(node);
    // First separator strictly greater than the target composite.
    size_t idx = 0;
    size_t lo = 0, hi = in->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (CompareEntry(in->keys[mid].key, in->keys[mid].row_id, key, row_id) <=
          0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    idx = lo;
    node = in->children[idx];
  }
  return static_cast<LeafNode*>(node);
}

BPlusTree::LeafNode* BPlusTree::LeftmostLeaf() const {
  Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<InternalNode*>(node)->children.front();
  }
  return static_cast<LeafNode*>(node);
}

void BPlusTree::Insert(const Value& key, RowId row_id) {
  LeafNode* leaf = FindLeaf(key, row_id);
  auto pos = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), Entry{key, row_id},
      [](const Entry& a, const Entry& b) {
        return CompareEntry(a.key, a.row_id, b.key, b.row_id) < 0;
      });
  leaf->entries.insert(pos, Entry{key, row_id});
  ++size_;

  if (leaf->entries.size() <= kLeafCapacity) return;

  // Split the leaf.
  auto* right = new LeafNode();
  size_t mid = leaf->entries.size() / 2;
  right->entries.assign(leaf->entries.begin() + static_cast<long>(mid),
                        leaf->entries.end());
  leaf->entries.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  InsertIntoParent(leaf, right->entries.front().key,
                   right->entries.front().row_id, right);
}

void BPlusTree::InsertIntoParent(Node* left, const Value& sep_key,
                                 RowId sep_row, Node* right) {
  InternalNode* parent = left->parent;
  if (parent == nullptr) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(Entry{sep_key, sep_row});
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    ++height_;
    return;
  }

  // Insert the separator right after `left`'s slot.
  size_t idx = 0;
  while (idx < parent->children.size() && parent->children[idx] != left) ++idx;
  parent->keys.insert(parent->keys.begin() + static_cast<long>(idx),
                      Entry{sep_key, sep_row});
  parent->children.insert(parent->children.begin() + static_cast<long>(idx) + 1,
                          right);
  right->parent = parent;

  if (parent->keys.size() <= kInternalCapacity) return;

  // Split the internal node: middle key moves up.
  auto* new_right = new InternalNode();
  size_t mid = parent->keys.size() / 2;
  Entry up = parent->keys[mid];
  new_right->keys.assign(parent->keys.begin() + static_cast<long>(mid) + 1,
                         parent->keys.end());
  new_right->children.assign(
      parent->children.begin() + static_cast<long>(mid) + 1,
      parent->children.end());
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  for (Node* child : new_right->children) child->parent = new_right;
  InsertIntoParent(parent, up.key, up.row_id, new_right);
}

bool BPlusTree::Erase(const Value& key, RowId row_id) {
  LeafNode* leaf = FindLeaf(key, row_id);
  auto pos = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), Entry{key, row_id},
      [](const Entry& a, const Entry& b) {
        return CompareEntry(a.key, a.row_id, b.key, b.row_id) < 0;
      });
  if (pos == leaf->entries.end() ||
      CompareEntry(pos->key, pos->row_id, key, row_id) != 0) {
    return false;
  }
  leaf->entries.erase(pos);
  --size_;
  return true;
}

void BPlusTree::ScanRange(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive,
    const std::function<bool(const Value&, RowId)>& visitor) const {
  const LeafNode* leaf;
  if (lo.has_value()) {
    leaf = FindLeaf(*lo, kMinRow);
  } else {
    leaf = LeftmostLeaf();
  }
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const Entry& e : leaf->entries) {
      if (lo.has_value()) {
        int c = e.key.Compare(*lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        int c = e.key.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      if (!visitor(e.key, e.row_id)) return;
    }
  }
}

std::vector<RowId> BPlusTree::Lookup(const Value& key) const {
  return LookupRange(key, true, key, true);
}

std::vector<RowId> BPlusTree::LookupRange(const std::optional<Value>& lo,
                                          bool lo_inclusive,
                                          const std::optional<Value>& hi,
                                          bool hi_inclusive) const {
  std::vector<RowId> out;
  ScanRange(lo, lo_inclusive, hi, hi_inclusive,
            [&out](const Value&, RowId row) {
              out.push_back(row);
              return true;
            });
  return out;
}

size_t BPlusTree::CountRange(const std::optional<Value>& lo, bool lo_inclusive,
                             const std::optional<Value>& hi,
                             bool hi_inclusive) const {
  size_t n = 0;
  ScanRange(lo, lo_inclusive, hi, hi_inclusive, [&n](const Value&, RowId) {
    ++n;
    return true;
  });
  return n;
}

bool BPlusTree::CheckNode(const Node* node, int depth, int leaf_depth) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) return false;
    const auto* leaf = static_cast<const LeafNode*>(node);
    for (size_t i = 1; i < leaf->entries.size(); ++i) {
      if (CompareEntry(leaf->entries[i - 1].key, leaf->entries[i - 1].row_id,
                       leaf->entries[i].key, leaf->entries[i].row_id) > 0) {
        return false;
      }
    }
    return true;
  }
  const auto* in = static_cast<const InternalNode*>(node);
  if (in->children.size() != in->keys.size() + 1) return false;
  for (size_t i = 1; i < in->keys.size(); ++i) {
    if (CompareEntry(in->keys[i - 1].key, in->keys[i - 1].row_id,
                     in->keys[i].key, in->keys[i].row_id) > 0) {
      return false;
    }
  }
  for (const Node* child : in->children) {
    if (child->parent != node) return false;
    if (!CheckNode(child, depth + 1, leaf_depth)) return false;
  }
  return true;
}

bool BPlusTree::CheckInvariants() const {
  if (!CheckNode(root_, 1, height_)) return false;
  // Leaf chain must be globally sorted and cover exactly size_ entries.
  size_t n = 0;
  const LeafNode* leaf = LeftmostLeaf();
  const Entry* prev = nullptr;
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const Entry& e : leaf->entries) {
      if (prev != nullptr &&
          CompareEntry(prev->key, prev->row_id, e.key, e.row_id) > 0) {
        return false;
      }
      prev = &e;
      ++n;
    }
  }
  return n == size_;
}

}  // namespace sieve
