#ifndef SIEVE_INDEX_INDEX_H_
#define SIEVE_INDEX_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/bptree.h"
#include "index/histogram.h"
#include "storage/table.h"

namespace sieve {

/// Secondary index over one column of a table, backed by a B+-tree, with an
/// attached equi-depth histogram for cardinality estimation.
class Index {
 public:
  Index(std::string name, std::string column, size_t column_idx)
      : name_(std::move(name)),
        column_(std::move(column)),
        column_idx_(column_idx) {}

  const std::string& name() const { return name_; }
  const std::string& column() const { return column_; }
  size_t column_idx() const { return column_idx_; }

  void InsertEntry(const Value& key, RowId row) { tree_.Insert(key, row); }
  bool EraseEntry(const Value& key, RowId row) { return tree_.Erase(key, row); }

  const BPlusTree& tree() const { return tree_; }

  /// Rebuilds the histogram from the current index contents.
  void RefreshStatistics(int num_buckets = 64);

  const EquiDepthHistogram& histogram() const { return histogram_; }

  /// Estimated selectivity (fraction of rows) of `column op value-range`.
  double EstimateRangeSelectivity(const std::optional<Value>& lo,
                                  bool lo_inclusive,
                                  const std::optional<Value>& hi,
                                  bool hi_inclusive) const;
  double EstimateEqSelectivity(const Value& v) const;

 private:
  std::string name_;
  std::string column_;
  size_t column_idx_;
  BPlusTree tree_;
  EquiDepthHistogram histogram_;
};

/// All indexes of one table. The paper assumes every relation has an index
/// on `owner` plus whatever other attributes the deployment indexes; this
/// manager answers "is attribute X indexed" during guard generation.
class IndexManager {
 public:
  /// Creates an index on `column` (one index per column). The backing table
  /// is scanned to populate the new index.
  Status CreateIndex(const Table& table, const std::string& column);

  /// Index on `column`, or nullptr.
  Index* Find(const std::string& column);
  const Index* Find(const std::string& column) const;

  bool HasIndex(const std::string& column) const {
    return Find(column) != nullptr;
  }

  /// Maintenance hooks invoked by the engine on DML.
  void OnInsert(const Row& row, RowId id);
  void OnDelete(const Row& row, RowId id);

  /// Rebuild histograms on every index (ANALYZE).
  void RefreshStatistics(int num_buckets = 64);

  std::vector<std::string> IndexedColumns() const;

 private:
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace sieve

#endif  // SIEVE_INDEX_INDEX_H_
