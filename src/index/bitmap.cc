#include "index/bitmap.h"

#include <bit>

namespace sieve {

void Bitmap::Or(const Bitmap& other) {
  if (other.universe_ > universe_) {
    universe_ = other.universe_;
    words_.resize((universe_ + 63) / 64, 0);
  }
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void Bitmap::And(const Bitmap& other) {
  size_t n = words_.size() < other.words_.size() ? words_.size()
                                                 : other.words_.size();
  for (size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
  for (size_t i = n; i < words_.size(); ++i) words_[i] = 0;
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::vector<RowId> Bitmap::ToVector() const {
  std::vector<RowId> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int bit = std::countr_zero(w);
      out.push_back(static_cast<RowId>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace sieve
