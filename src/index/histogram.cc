#include "index/histogram.h"

#include <algorithm>

#include "common/string_util.h"

namespace sieve {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<Value> values,
                                             int num_buckets) {
  EquiDepthHistogram h;
  if (values.empty()) return h;
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  h.total_count_ = values.size();

  size_t distinct_total = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i].Compare(values[i - 1]) != 0) ++distinct_total;
  }
  h.distinct_count_ = distinct_total;

  if (num_buckets < 1) num_buckets = 1;
  size_t depth = (values.size() + static_cast<size_t>(num_buckets) - 1) /
                 static_cast<size_t>(num_buckets);
  if (depth == 0) depth = 1;

  size_t i = 0;
  while (i < values.size()) {
    Bucket b;
    b.lo = values[i];
    size_t end = std::min(values.size(), i + depth);
    // Extend the bucket so one value never straddles two buckets; this keeps
    // equality estimates consistent.
    while (end < values.size() &&
           values[end].Compare(values[end - 1]) == 0) {
      ++end;
    }
    b.hi = values[end - 1];
    b.count = end - i;
    b.distinct = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (values[j].Compare(values[j - 1]) != 0) ++b.distinct;
    }
    h.buckets_.push_back(std::move(b));
    i = end;
  }
  return h;
}

double EquiDepthHistogram::EstimateEq(const Value& v) const {
  if (total_count_ == 0) return 0.0;
  for (const Bucket& b : buckets_) {
    if (v.Compare(b.lo) >= 0 && v.Compare(b.hi) <= 0) {
      // Uniform-within-bucket assumption over distinct values.
      double per_value =
          static_cast<double>(b.count) / static_cast<double>(b.distinct);
      return per_value / static_cast<double>(total_count_);
    }
  }
  return 0.0;
}

double EquiDepthHistogram::BucketFractionBelow(const Bucket& bucket,
                                               const Value& v,
                                               bool inclusive) const {
  if (v.Compare(bucket.lo) < 0) return 0.0;
  if (v.Compare(bucket.hi) > 0 || (inclusive && v.Compare(bucket.hi) == 0)) {
    return 1.0;
  }
  // Numeric interpolation when possible; otherwise assume the midpoint.
  DataType t = bucket.lo.type();
  if ((t == DataType::kInt || t == DataType::kTime || t == DataType::kDate ||
       t == DataType::kDouble) &&
      v.type() != DataType::kString) {
    double lo = bucket.lo.AsDouble();
    double hi = bucket.hi.AsDouble();
    if (hi > lo) {
      double f = (v.AsDouble() - lo) / (hi - lo);
      if (f < 0.0) f = 0.0;
      if (f > 1.0) f = 1.0;
      return f;
    }
    // Single-point bucket.
    return inclusive && v.Compare(bucket.lo) >= 0 ? 1.0 : 0.0;
  }
  return 0.5;
}

double EquiDepthHistogram::EstimateRange(const std::optional<Value>& lo,
                                         bool lo_inclusive,
                                         const std::optional<Value>& hi,
                                         bool hi_inclusive) const {
  if (total_count_ == 0) return 0.0;
  double selected = 0.0;
  for (const Bucket& b : buckets_) {
    double above_lo = 1.0;
    if (lo.has_value()) {
      // Fraction of bucket >= lo (or > lo when exclusive).
      above_lo = 1.0 - BucketFractionBelow(b, *lo, /*inclusive=*/!lo_inclusive);
    }
    double below_hi = 1.0;
    if (hi.has_value()) {
      below_hi = BucketFractionBelow(b, *hi, /*inclusive=*/hi_inclusive);
    }
    double f = above_lo + below_hi - 1.0;
    if (f > 0.0) selected += f * static_cast<double>(b.count);
  }
  double sel = selected / static_cast<double>(total_count_);
  if (sel < 0.0) sel = 0.0;
  if (sel > 1.0) sel = 1.0;
  return sel;
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = StrFormat("histogram{n=%zu distinct=%zu buckets=[",
                              total_count_, distinct_count_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("[%s..%s]x%zu", buckets_[i].lo.ToString().c_str(),
                     buckets_[i].hi.ToString().c_str(), buckets_[i].count);
  }
  out += "]}";
  return out;
}

}  // namespace sieve
