#ifndef SIEVE_INDEX_BITMAP_H_
#define SIEVE_INDEX_BITMAP_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace sieve {

/// Dense row-id bitmap used to merge the results of multiple index scans in
/// memory before fetching rows — the mechanism PostgreSQL uses for
/// "bitmap OR" plans, which the paper's Experiments 4 and 5 identify as the
/// reason Sieve's speedups grow with the number of guards on PostgreSQL.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t universe) { Resize(universe); }

  void Resize(size_t universe) {
    universe_ = universe;
    words_.assign((universe + 63) / 64, 0);
  }

  size_t universe() const { return universe_; }

  void Set(RowId id) {
    size_t i = static_cast<size_t>(id);
    if (i >= universe_) {
      universe_ = i + 1;
      words_.resize((universe_ + 63) / 64, 0);
    }
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  bool Test(RowId id) const {
    size_t i = static_cast<size_t>(id);
    if (i >= universe_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// In-place union; grows to the larger universe.
  void Or(const Bitmap& other);

  /// In-place intersection.
  void And(const Bitmap& other);

  size_t Count() const;

  /// Row ids in ascending order.
  std::vector<RowId> ToVector() const;

 private:
  size_t universe_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sieve

#endif  // SIEVE_INDEX_BITMAP_H_
