#include "index/index.h"

#include "common/string_util.h"

namespace sieve {

void Index::RefreshStatistics(int num_buckets) {
  std::vector<Value> values;
  values.reserve(tree_.size());
  tree_.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&values](const Value& key, RowId) {
                    values.push_back(key);
                    return true;
                  });
  histogram_ = EquiDepthHistogram::Build(std::move(values), num_buckets);
}

double Index::EstimateRangeSelectivity(const std::optional<Value>& lo,
                                       bool lo_inclusive,
                                       const std::optional<Value>& hi,
                                       bool hi_inclusive) const {
  return histogram_.EstimateRange(lo, lo_inclusive, hi, hi_inclusive);
}

double Index::EstimateEqSelectivity(const Value& v) const {
  return histogram_.EstimateEq(v);
}

Status IndexManager::CreateIndex(const Table& table,
                                 const std::string& column) {
  if (Find(column) != nullptr) {
    return Status::AlreadyExists("index already exists on column " + column);
  }
  int idx = table.schema().FindColumn(column);
  if (idx < 0) {
    return Status::NotFound(StrFormat("cannot index %s.%s: no such column",
                                      table.name().c_str(), column.c_str()));
  }
  auto index = std::make_unique<Index>(
      StrFormat("idx_%s_%s", table.name().c_str(), column.c_str()), column,
      static_cast<size_t>(idx));
  table.ForEach([&index, idx](RowId id, const Row& row) {
    index->InsertEntry(row[static_cast<size_t>(idx)], id);
  });
  index->RefreshStatistics();
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Index* IndexManager::Find(const std::string& column) {
  for (auto& index : indexes_) {
    if (EqualsIgnoreCase(index->column(), column)) return index.get();
  }
  return nullptr;
}

const Index* IndexManager::Find(const std::string& column) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->column(), column)) return index.get();
  }
  return nullptr;
}

void IndexManager::OnInsert(const Row& row, RowId id) {
  for (auto& index : indexes_) {
    index->InsertEntry(row[index->column_idx()], id);
  }
}

void IndexManager::OnDelete(const Row& row, RowId id) {
  for (auto& index : indexes_) {
    index->EraseEntry(row[index->column_idx()], id);
  }
}

void IndexManager::RefreshStatistics(int num_buckets) {
  for (auto& index : indexes_) index->RefreshStatistics(num_buckets);
}

std::vector<std::string> IndexManager::IndexedColumns() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& index : indexes_) out.push_back(index->column());
  return out;
}

}  // namespace sieve
