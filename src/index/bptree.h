#ifndef SIEVE_INDEX_BPTREE_H_
#define SIEVE_INDEX_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace sieve {

/// In-memory B+-tree mapping (Value key, RowId) -> RowId. Duplicate keys are
/// supported by making the RowId part of the composite key. Leaves are linked
/// for efficient range scans; this is the access path behind IndexRangeScan
/// and the bitmap-OR scans that reproduce PostgreSQL's behaviour in the
/// paper's Experiments 4-5.
class BPlusTree {
 public:
  /// Composite entry stored in leaves.
  struct Entry {
    Value key;
    RowId row_id;
  };

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  void Insert(const Value& key, RowId row_id);

  /// Removes one (key,row_id) entry. Returns true when found. Underflow is
  /// tolerated (no rebalance on delete); lookups stay correct, which is the
  /// standard trade-off for append-mostly analytic stores.
  bool Erase(const Value& key, RowId row_id);

  size_t size() const { return size_; }
  int height() const { return height_; }

  /// Visits every entry with key in the given (optionally open) range in
  /// key order. `visitor` returns false to stop early.
  void ScanRange(const std::optional<Value>& lo, bool lo_inclusive,
                 const std::optional<Value>& hi, bool hi_inclusive,
                 const std::function<bool(const Value&, RowId)>& visitor) const;

  /// Convenience: collects row ids for an equality probe.
  std::vector<RowId> Lookup(const Value& key) const;

  /// Convenience: collects row ids in a closed/open range.
  std::vector<RowId> LookupRange(const std::optional<Value>& lo,
                                 bool lo_inclusive,
                                 const std::optional<Value>& hi,
                                 bool hi_inclusive) const;

  /// Number of entries with key in the given range (exact; used by tests and
  /// to validate histogram estimates).
  size_t CountRange(const std::optional<Value>& lo, bool lo_inclusive,
                    const std::optional<Value>& hi, bool hi_inclusive) const;

  /// Validates structural invariants (sorted keys, balanced height, separator
  /// correctness). Used by property tests; returns false on violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  static constexpr int kLeafCapacity = 64;
  static constexpr int kInternalCapacity = 64;

  // Returns -1/0/1 comparing (key,row) composite entries.
  static int CompareEntry(const Value& a_key, RowId a_row, const Value& b_key,
                          RowId b_row);

  LeafNode* FindLeaf(const Value& key, RowId row_id) const;
  LeafNode* LeftmostLeaf() const;

  void InsertIntoParent(Node* left, const Value& sep_key, RowId sep_row,
                        Node* right);

  bool CheckNode(const Node* node, int depth, int leaf_depth) const;
  void FreeNode(Node* node);

  Node* root_ = nullptr;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace sieve

#endif  // SIEVE_INDEX_BPTREE_H_
