#include "storage/schema.h"

#include "common/string_util.h"

namespace sieve {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) return Status::NotFound("no such column: " + name);
  return static_cast<size_t>(idx);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace sieve
