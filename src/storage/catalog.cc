#include "storage/catalog.h"

#include "common/string_util.h"

namespace sieve {

Status Catalog::CreateTable(const std::string& name, Schema schema) {
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto entry = std::make_unique<TableEntry>();
  entry->table = std::make_unique<Table>(name, std::move(schema));
  tables_.emplace_back(name, std::move(entry));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (EqualsIgnoreCase(it->first, name)) {
      tables_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such table: " + name);
}

TableEntry* Catalog::Find(const std::string& name) {
  for (auto& [table_name, entry] : tables_) {
    if (EqualsIgnoreCase(table_name, name)) return entry.get();
  }
  return nullptr;
}

const TableEntry* Catalog::Find(const std::string& name) const {
  for (const auto& [table_name, entry] : tables_) {
    if (EqualsIgnoreCase(table_name, name)) return entry.get();
  }
  return nullptr;
}

Result<TableEntry*> Catalog::Get(const std::string& name) {
  TableEntry* entry = Find(name);
  if (entry == nullptr) return Status::NotFound("no such table: " + name);
  return entry;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [table_name, entry] : tables_) out.push_back(table_name);
  return out;
}

}  // namespace sieve
