#ifndef SIEVE_STORAGE_SCHEMA_H_
#define SIEVE_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sieve {

/// Definition of a single column: name and logical type.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;
};

/// Ordered list of columns of a relation. Column lookup is by
/// case-insensitive name; offsets are stable.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the offset of `name` or -1 when absent.
  int FindColumn(const std::string& name) const;

  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a column (used when deriving joined/projected schemas).
  void AddColumn(ColumnDef def) { columns_.push_back(std::move(def)); }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace sieve

#endif  // SIEVE_STORAGE_SCHEMA_H_
