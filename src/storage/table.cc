#include "storage/table.h"

#include "common/string_util.h"

namespace sieve {

Result<RowId> Table::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %zu of table %s",
                  row.size(), schema_.num_columns(), name_.c_str()));
  }
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  return static_cast<RowId>(rows_.size() - 1);
}

Status Table::Delete(RowId id) {
  if (id < 0 || static_cast<size_t>(id) >= rows_.size()) {
    return Status::NotFound(StrFormat("row id %lld out of range in table %s",
                                      static_cast<long long>(id),
                                      name_.c_str()));
  }
  if (!deleted_[static_cast<size_t>(id)]) {
    deleted_[static_cast<size_t>(id)] = true;
    ++num_deleted_;
  }
  return Status::OK();
}

}  // namespace sieve
