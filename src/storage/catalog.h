#ifndef SIEVE_STORAGE_CATALOG_H_
#define SIEVE_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace sieve {

/// A table together with its secondary indexes.
struct TableEntry {
  std::unique_ptr<Table> table;
  IndexManager indexes;
};

/// Name -> table registry for one database instance.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);

  /// Case-insensitive lookup; nullptr when absent.
  TableEntry* Find(const std::string& name);
  const TableEntry* Find(const std::string& name) const;

  Result<TableEntry*> Get(const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::pair<std::string, std::unique_ptr<TableEntry>>> tables_;
};

}  // namespace sieve

#endif  // SIEVE_STORAGE_CATALOG_H_
