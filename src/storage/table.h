#ifndef SIEVE_STORAGE_TABLE_H_
#define SIEVE_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace sieve {

using Row = std::vector<Value>;
using RowId = int64_t;

/// In-memory row store for one relation. Rows are append-only with tombstone
/// deletion; RowIds are stable (positional), which secondary indexes rely on.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  size_t size() const { return rows_.size() - num_deleted_; }
  /// Number of row slots including tombstones (max RowId + 1).
  size_t num_slots() const { return rows_.size(); }

  /// Appends a row; returns its RowId. The row arity must match the schema.
  Result<RowId> Insert(Row row);

  /// Marks a row deleted. Idempotent.
  Status Delete(RowId id);

  bool IsLive(RowId id) const {
    return id >= 0 && static_cast<size_t>(id) < rows_.size() &&
           !deleted_[static_cast<size_t>(id)];
  }

  const Row& Get(RowId id) const { return rows_[static_cast<size_t>(id)]; }

  /// Invokes fn(row_id, row) for every live row.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (!deleted_[i]) fn(static_cast<RowId>(i), rows_[i]);
    }
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t num_deleted_ = 0;
};

}  // namespace sieve

#endif  // SIEVE_STORAGE_TABLE_H_
