#ifndef SIEVE_EXPR_EXPR_H_
#define SIEVE_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace sieve {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParameter,
  kComparison,
  kBetween,
  kInList,
  kAnd,
  kOr,
  kNot,
  kUdfCall,
  kSubquery,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);
/// Parses "=", "!=", "<>", "<", "<=", ">", ">=" into a CompareOp.
Result<CompareOp> ParseCompareOp(const std::string& symbol);

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Base class for scalar/boolean expression trees. Expressions are built by
/// the parser, by the Sieve rewriter (policy predicates, guards) and by the
/// workload generators; the same evaluator runs them all.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// SQL rendering; round-trips through the parser.
  virtual std::string ToSql() const = 0;

  /// Deep copy.
  virtual ExprPtr Clone() const = 0;

 private:
  ExprKind kind_;
};

/// Constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value_(std::move(v)) {}

  const Value& value() const { return value_; }
  /// Used by the binder to coerce string literals to time/date column types.
  void set_value(Value v) { value_ = std::move(v); }

  std::string ToSql() const override { return value_.ToSqlLiteral(); }
  ExprPtr Clone() const override { return std::make_shared<LiteralExpr>(value_); }

 private:
  Value value_;
};

/// Reference to a column, optionally qualified ("W.owner"). The binder
/// resolves it to an offset in the input schema.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(ExprKind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}

  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  /// "qualifier.name" or "name".
  std::string FullName() const {
    return qualifier_.empty() ? name_ : qualifier_ + "." + name_;
  }

  int bound_index() const { return bound_index_; }
  void set_bound_index(int idx) { bound_index_ = idx; }

  std::string ToSql() const override { return FullName(); }
  ExprPtr Clone() const override {
    // bound_index_ is intentionally not copied: clones are routinely rebound
    // against different schemas (CTE bodies, join outputs).
    return std::make_shared<ColumnRefExpr>(qualifier_, name_);
  }

 private:
  std::string qualifier_;
  std::string name_;
  int bound_index_ = -1;
};

/// Query parameter placeholder: positional `?` or named `:name`. Slots are
/// assigned by the parser (each `?` gets a fresh slot, every occurrence of
/// the same `:name` shares one); BindParameters replaces the node with a
/// literal at execute time, so downstream layers (optimizer, evaluator)
/// never see one in a bound statement. Evaluating an unbound parameter is
/// an execution error.
class ParameterExpr : public Expr {
 public:
  ParameterExpr(size_t slot, std::string name)
      : Expr(ExprKind::kParameter), slot_(slot), name_(std::move(name)) {}

  /// Zero-based position in the prepared query's parameter list.
  size_t slot() const { return slot_; }
  /// Lower-cased name for `:name` parameters; empty for positional `?`.
  const std::string& name() const { return name_; }

  std::string ToSql() const override {
    return name_.empty() ? "?" : ":" + name_;
  }
  ExprPtr Clone() const override {
    // Slot and name are preserved: the rewriter clones parameterized
    // predicates into CTE bodies, and every copy must bind the same value.
    return std::make_shared<ParameterExpr>(slot_, name_);
  }

 private:
  size_t slot_;
  std::string name_;
};

/// left op right.
class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  ExprPtr& mutable_left() { return left_; }
  ExprPtr& mutable_right() { return right_; }

  std::string ToSql() const override;
  ExprPtr Clone() const override {
    return std::make_shared<ComparisonExpr>(op_, left_->Clone(),
                                            right_->Clone());
  }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// input BETWEEN lo AND hi (inclusive).
class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr input, ExprPtr lo, ExprPtr hi)
      : Expr(ExprKind::kBetween),
        input_(std::move(input)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}

  const ExprPtr& input() const { return input_; }
  const ExprPtr& lo() const { return lo_; }
  const ExprPtr& hi() const { return hi_; }
  ExprPtr& mutable_input() { return input_; }
  ExprPtr& mutable_lo() { return lo_; }
  ExprPtr& mutable_hi() { return hi_; }

  std::string ToSql() const override;
  ExprPtr Clone() const override {
    return std::make_shared<BetweenExpr>(input_->Clone(), lo_->Clone(),
                                         hi_->Clone());
  }

 private:
  ExprPtr input_;
  ExprPtr lo_;
  ExprPtr hi_;
};

/// input [NOT] IN (item, item, ...).
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr input, std::vector<ExprPtr> items, bool negated)
      : Expr(ExprKind::kInList),
        input_(std::move(input)),
        items_(std::move(items)),
        negated_(negated) {}

  const ExprPtr& input() const { return input_; }
  const std::vector<ExprPtr>& items() const { return items_; }
  bool negated() const { return negated_; }
  ExprPtr& mutable_input() { return input_; }
  std::vector<ExprPtr>& mutable_items() { return items_; }

  std::string ToSql() const override;
  ExprPtr Clone() const override;

  /// Hash set of the literal items, built lazily on first evaluation when
  /// every item is a constant (how real engines evaluate large IN lists).
  /// Null when some item is non-literal.
  const std::unordered_set<Value, ValueHash>* ConstantSet() const;

 private:
  ExprPtr input_;
  std::vector<ExprPtr> items_;
  bool negated_;
  mutable bool set_built_ = false;
  mutable bool set_usable_ = false;
  mutable std::unordered_set<Value, ValueHash> constant_set_;
};

/// N-ary conjunction.
class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : Expr(ExprKind::kAnd), children_(std::move(children)) {}

  const std::vector<ExprPtr>& children() const { return children_; }
  std::vector<ExprPtr>& mutable_children() { return children_; }

  std::string ToSql() const override;
  ExprPtr Clone() const override;

 private:
  std::vector<ExprPtr> children_;
};

/// N-ary disjunction. Evaluation short-circuits left to right, which is the
/// behaviour the paper's α parameter (average number of policies checked
/// before one matches) models.
class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : Expr(ExprKind::kOr), children_(std::move(children)) {}

  const std::vector<ExprPtr>& children() const { return children_; }
  std::vector<ExprPtr>& mutable_children() { return children_; }

  std::string ToSql() const override;
  ExprPtr Clone() const override;

 private:
  std::vector<ExprPtr> children_;
};

/// NOT child.
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child)
      : Expr(ExprKind::kNot), child_(std::move(child)) {}

  const ExprPtr& child() const { return child_; }
  ExprPtr& mutable_child() { return child_; }

  std::string ToSql() const override { return "NOT (" + child_->ToSql() + ")"; }
  ExprPtr Clone() const override {
    return std::make_shared<NotExpr>(child_->Clone());
  }

 private:
  ExprPtr child_;
};

/// Call to a registered UDF, e.g. the Δ operator: delta(guard_id, ...).
class UdfCallExpr : public Expr {
 public:
  UdfCallExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kUdfCall),
        name_(std::move(name)),
        args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>& mutable_args() { return args_; }

  std::string ToSql() const override;
  ExprPtr Clone() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// Correlated scalar subquery; stores the SQL text and is evaluated through
/// the engine (EngineHooks). This implements the paper's "derived value"
/// object conditions, e.g. wifiAP = (SELECT W2.wifiAP FROM ... WHERE
/// W2.ts_time = W.ts_time AND W2.owner = 'Prof. Smith').
class SubqueryExpr : public Expr {
 public:
  explicit SubqueryExpr(std::string sql)
      : Expr(ExprKind::kSubquery), sql_(std::move(sql)) {}

  const std::string& sql() const { return sql_; }

  std::string ToSql() const override { return "(" + sql_ + ")"; }
  ExprPtr Clone() const override { return std::make_shared<SubqueryExpr>(sql_); }

 private:
  std::string sql_;
};

// ---------------------------------------------------------------------------
// Construction helpers used heavily by the rewriter and workload generators.
// ---------------------------------------------------------------------------

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(const std::string& name);
ExprPtr MakeColumn(const std::string& qualifier, const std::string& name);
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right);
/// column op literal.
ExprPtr MakeColumnCompare(const std::string& column, CompareOp op, Value v);
ExprPtr MakeBetween(const std::string& column, Value lo, Value hi);
/// Conjunction of `children`; returns the single child when there is one,
/// and TRUE (literal) when empty.
ExprPtr MakeAnd(std::vector<ExprPtr> children);
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeNot(ExprPtr child);

/// Splits nested conjunctions into a flat list of conjuncts.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Structural equality (used by parser round-trip tests).
bool ExprEquals(const Expr& a, const Expr& b);

/// Binds every ColumnRef in the tree against `schema`. Resolution order:
/// exact match on the full qualified name, then unique match on the bare
/// column name (so predicates written against base tables bind inside
/// aliased scans and join outputs).
Status BindExpr(Expr* expr, const Schema& schema);

}  // namespace sieve

#endif  // SIEVE_EXPR_EXPR_H_
