#ifndef SIEVE_EXPR_EVAL_H_
#define SIEVE_EXPR_EVAL_H_

#include <string>
#include <vector>

#include "common/exec_stats.h"
#include "common/metadata.h"
#include "common/status.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace sieve {

/// Callbacks the evaluator needs from the engine: correlated scalar
/// subqueries and UDF dispatch. Database implements this; keeping it an
/// interface avoids a layering cycle between expr/ and engine/.
class EngineHooks {
 public:
  virtual ~EngineHooks() = default;

  /// Runs `sql` as a scalar subquery; `outer_schema`/`outer_row` provide the
  /// correlation scope (columns not resolvable inside the subquery bind to
  /// the outer row).
  virtual Result<Value> EvalScalarSubquery(const std::string& sql,
                                           const Schema& outer_schema,
                                           const Row& outer_row,
                                           const QueryMetadata* metadata,
                                           ExecStats* stats) = 0;

  /// Dispatches a UDF call.
  virtual Result<Value> CallUdf(const std::string& name,
                                const std::vector<Value>& args,
                                const Schema& schema, const Row& row,
                                const QueryMetadata* metadata,
                                ExecStats* stats) = 0;
};

/// Expression evaluator over one row at a time. Short-circuits AND/OR (the
/// paper's α models exactly this behaviour for policy disjunctions) and
/// counts atomic comparisons into ExecStats.
class Evaluator {
 public:
  Evaluator(const Schema* schema, EngineHooks* hooks,
            const QueryMetadata* metadata, ExecStats* stats)
      : schema_(schema), hooks_(hooks), metadata_(metadata), stats_(stats) {}

  Result<Value> Eval(const Expr& expr, const Row& row);

  /// Boolean evaluation; NULL is treated as false (SQL WHERE semantics).
  Result<bool> EvalPredicate(const Expr& expr, const Row& row);

 private:
  const Schema* schema_;
  EngineHooks* hooks_;
  const QueryMetadata* metadata_;
  ExecStats* stats_;
};

}  // namespace sieve

#endif  // SIEVE_EXPR_EVAL_H_
