#ifndef SIEVE_EXPR_EVAL_H_
#define SIEVE_EXPR_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/exec_stats.h"
#include "common/metadata.h"
#include "common/status.h"
#include "expr/expr.h"
#include "plan/row_batch.h"
#include "storage/table.h"

namespace sieve {

/// Callbacks the evaluator needs from the engine: correlated scalar
/// subqueries and UDF dispatch. Database implements this; keeping it an
/// interface avoids a layering cycle between expr/ and engine/.
class EngineHooks {
 public:
  virtual ~EngineHooks() = default;

  /// Runs `sql` as a scalar subquery; `outer_schema`/`outer_row` provide the
  /// correlation scope (columns not resolvable inside the subquery bind to
  /// the outer row).
  virtual Result<Value> EvalScalarSubquery(const std::string& sql,
                                           const Schema& outer_schema,
                                           const Row& outer_row,
                                           const QueryMetadata* metadata,
                                           ExecStats* stats) = 0;

  /// Dispatches a UDF call.
  virtual Result<Value> CallUdf(const std::string& name,
                                const std::vector<Value>& args,
                                const Schema& schema, const Row& row,
                                const QueryMetadata* metadata,
                                ExecStats* stats) = 0;
};

/// Expression evaluator. The row-at-a-time entry points (Eval,
/// EvalPredicate) short-circuit AND/OR (the paper's α models exactly this
/// behaviour for policy disjunctions) and count atomic comparisons into
/// ExecStats.
///
/// EvalPredicateBatch is the vectorized entry point: one walk of the
/// expression tree drives tight loops directly over the batch's typed
/// column arrays (null bytes + contiguous primitives), so comparison and
/// AND/OR guard nodes compile to branch-free kernels the auto-vectorizer
/// can SIMD — no Value objects are constructed on the hot path. AND/OR
/// narrow a per-node active-row set exactly the way short-circuiting
/// prunes per row, so the (node, row) evaluation pairs — and therefore
/// every ExecStats counter — are identical to evaluating the rows one at
/// a time. Sub-expressions with per-row side effects (UDF calls such as
/// the Δ operator, correlated subqueries, non-constant IN lists) fall
/// back to row-at-a-time evaluation for exactly the active rows
/// (materialized from the columns on demand), preserving semantics and
/// counters by construction.
class Evaluator {
 public:
  Evaluator(const Schema* schema, EngineHooks* hooks,
            const QueryMetadata* metadata, ExecStats* stats)
      : schema_(schema), hooks_(hooks), metadata_(metadata), stats_(stats) {}

  Result<Value> Eval(const Expr& expr, const Row& row);

  /// Boolean evaluation; NULL is treated as false (SQL WHERE semantics).
  Result<bool> EvalPredicate(const Expr& expr, const Row& row);

  /// Batched predicate evaluation over the batch's active rows: sets
  /// (*pass)[k] to the value EvalPredicate(expr, row k) would return,
  /// with identical ExecStats side effects, in one tree walk over the
  /// columnar arrays. `pass` is resized to batch.size() and is indexed by
  /// active position (feed it to RowBatch::NarrowToPassing).
  Status EvalPredicateBatch(const Expr& expr, const RowBatch& batch,
                            std::vector<uint8_t>* pass);

  /// Convenience overload over a plain row span (tests, callers without a
  /// columnar batch): stages the rows into a temporary batch. Rows of
  /// non-uniform arity fall back to per-row EvalPredicate — identical by
  /// the batch/row equivalence contract.
  Status EvalPredicateBatch(const Expr& expr, const Row* rows,
                            size_t num_rows, std::vector<uint8_t>* pass);

 private:
  /// Tri-state truth value per active row: -1 NULL, 0 false, 1 true.
  /// `active` holds active positions (indices into the batch's selection
  /// view); entries of `tri` outside `active` are left untouched.
  Status EvalBoolBatch(const Expr& expr, const RowBatch& batch,
                       const std::vector<uint32_t>& active,
                       std::vector<int8_t>* tri);

  const Schema* schema_;
  EngineHooks* hooks_;
  const QueryMetadata* metadata_;
  ExecStats* stats_;
  Row scratch_row_;  // row-wise fallback: reused materialization buffer
};

}  // namespace sieve

#endif  // SIEVE_EXPR_EVAL_H_
