#include "expr/expr.h"

#include "common/string_util.h"

namespace sieve {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<CompareOp> ParseCompareOp(const std::string& symbol) {
  if (symbol == "=" || symbol == "==") return CompareOp::kEq;
  if (symbol == "!=" || symbol == "<>") return CompareOp::kNe;
  if (symbol == "<") return CompareOp::kLt;
  if (symbol == "<=") return CompareOp::kLe;
  if (symbol == ">") return CompareOp::kGt;
  if (symbol == ">=") return CompareOp::kGe;
  return Status::InvalidArgument("unknown comparison operator: " + symbol);
}

std::string ComparisonExpr::ToSql() const {
  return left_->ToSql() + " " + CompareOpSymbol(op_) + " " + right_->ToSql();
}

std::string BetweenExpr::ToSql() const {
  return input_->ToSql() + " BETWEEN " + lo_->ToSql() + " AND " + hi_->ToSql();
}

std::string InListExpr::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const auto& item : items_) parts.push_back(item->ToSql());
  return input_->ToSql() + (negated_ ? " NOT IN (" : " IN (") +
         Join(parts, ", ") + ")";
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> items;
  items.reserve(items_.size());
  for (const auto& item : items_) items.push_back(item->Clone());
  return std::make_shared<InListExpr>(input_->Clone(), std::move(items),
                                      negated_);
}

const std::unordered_set<Value, ValueHash>* InListExpr::ConstantSet() const {
  if (!set_built_) {
    set_built_ = true;
    set_usable_ = true;
    for (const auto& item : items_) {
      if (item->kind() != ExprKind::kLiteral) {
        set_usable_ = false;
        constant_set_.clear();
        break;
      }
      constant_set_.insert(static_cast<const LiteralExpr&>(*item).value());
    }
  }
  return set_usable_ ? &constant_set_ : nullptr;
}

std::string AndExpr::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) {
    bool paren = c->kind() == ExprKind::kOr;
    parts.push_back(paren ? "(" + c->ToSql() + ")" : c->ToSql());
  }
  return Join(parts, " AND ");
}

ExprPtr AndExpr::Clone() const {
  std::vector<ExprPtr> children;
  children.reserve(children_.size());
  for (const auto& c : children_) children.push_back(c->Clone());
  return std::make_shared<AndExpr>(std::move(children));
}

std::string OrExpr::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) {
    bool paren = c->kind() == ExprKind::kAnd || c->kind() == ExprKind::kOr;
    parts.push_back(paren ? "(" + c->ToSql() + ")" : c->ToSql());
  }
  return Join(parts, " OR ");
}

ExprPtr OrExpr::Clone() const {
  std::vector<ExprPtr> children;
  children.reserve(children_.size());
  for (const auto& c : children_) children.push_back(c->Clone());
  return std::make_shared<OrExpr>(std::move(children));
}

std::string UdfCallExpr::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const auto& a : args_) parts.push_back(a->ToSql());
  return name_ + "(" + Join(parts, ", ") + ")";
}

ExprPtr UdfCallExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_shared<UdfCallExpr>(name_, std::move(args));
}

ExprPtr MakeLiteral(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

ExprPtr MakeColumn(const std::string& name) {
  return std::make_shared<ColumnRefExpr>("", name);
}

ExprPtr MakeColumn(const std::string& qualifier, const std::string& name) {
  return std::make_shared<ColumnRefExpr>(qualifier, name);
}

ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeColumnCompare(const std::string& column, CompareOp op, Value v) {
  return MakeCompare(op, MakeColumn(column), MakeLiteral(std::move(v)));
}

ExprPtr MakeBetween(const std::string& column, Value lo, Value hi) {
  return std::make_shared<BetweenExpr>(MakeColumn(column),
                                       MakeLiteral(std::move(lo)),
                                       MakeLiteral(std::move(hi)));
}

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  if (children.empty()) return MakeLiteral(Value::Bool(true));
  if (children.size() == 1) return children[0];
  return std::make_shared<AndExpr>(std::move(children));
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  if (children.empty()) return MakeLiteral(Value::Bool(false));
  if (children.size() == 1) return children[0];
  return std::make_shared<OrExpr>(std::move(children));
}

ExprPtr MakeNot(ExprPtr child) {
  return std::make_shared<NotExpr>(std::move(child));
}

void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kAnd) {
    for (const auto& c : static_cast<const AndExpr&>(*expr).children()) {
      FlattenConjuncts(c, out);
    }
  } else {
    out->push_back(expr);
  }
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(a).value() ==
             static_cast<const LiteralExpr&>(b).value();
    case ExprKind::kColumnRef: {
      const auto& ca = static_cast<const ColumnRefExpr&>(a);
      const auto& cb = static_cast<const ColumnRefExpr&>(b);
      return EqualsIgnoreCase(ca.FullName(), cb.FullName());
    }
    case ExprKind::kParameter: {
      const auto& pa = static_cast<const ParameterExpr&>(a);
      const auto& pb = static_cast<const ParameterExpr&>(b);
      return pa.slot() == pb.slot() && pa.name() == pb.name();
    }
    case ExprKind::kComparison: {
      const auto& ca = static_cast<const ComparisonExpr&>(a);
      const auto& cb = static_cast<const ComparisonExpr&>(b);
      return ca.op() == cb.op() && ExprEquals(*ca.left(), *cb.left()) &&
             ExprEquals(*ca.right(), *cb.right());
    }
    case ExprKind::kBetween: {
      const auto& ba = static_cast<const BetweenExpr&>(a);
      const auto& bb = static_cast<const BetweenExpr&>(b);
      return ExprEquals(*ba.input(), *bb.input()) &&
             ExprEquals(*ba.lo(), *bb.lo()) && ExprEquals(*ba.hi(), *bb.hi());
    }
    case ExprKind::kInList: {
      const auto& ia = static_cast<const InListExpr&>(a);
      const auto& ib = static_cast<const InListExpr&>(b);
      if (ia.negated() != ib.negated()) return false;
      if (ia.items().size() != ib.items().size()) return false;
      if (!ExprEquals(*ia.input(), *ib.input())) return false;
      for (size_t i = 0; i < ia.items().size(); ++i) {
        if (!ExprEquals(*ia.items()[i], *ib.items()[i])) return false;
      }
      return true;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& children_a =
          a.kind() == ExprKind::kAnd
              ? static_cast<const AndExpr&>(a).children()
              : static_cast<const OrExpr&>(a).children();
      const auto& children_b =
          b.kind() == ExprKind::kAnd
              ? static_cast<const AndExpr&>(b).children()
              : static_cast<const OrExpr&>(b).children();
      if (children_a.size() != children_b.size()) return false;
      for (size_t i = 0; i < children_a.size(); ++i) {
        if (!ExprEquals(*children_a[i], *children_b[i])) return false;
      }
      return true;
    }
    case ExprKind::kNot:
      return ExprEquals(*static_cast<const NotExpr&>(a).child(),
                        *static_cast<const NotExpr&>(b).child());
    case ExprKind::kUdfCall: {
      const auto& ua = static_cast<const UdfCallExpr&>(a);
      const auto& ub = static_cast<const UdfCallExpr&>(b);
      if (!EqualsIgnoreCase(ua.name(), ub.name())) return false;
      if (ua.args().size() != ub.args().size()) return false;
      for (size_t i = 0; i < ua.args().size(); ++i) {
        if (!ExprEquals(*ua.args()[i], *ub.args()[i])) return false;
      }
      return true;
    }
    case ExprKind::kSubquery:
      return static_cast<const SubqueryExpr&>(a).sql() ==
             static_cast<const SubqueryExpr&>(b).sql();
  }
  return false;
}

namespace {

Status BindColumnRef(ColumnRefExpr* ref, const Schema& schema) {
  // Exact match on the fully qualified rendering first.
  int exact = schema.FindColumn(ref->FullName());
  if (exact >= 0) {
    ref->set_bound_index(exact);
    return Status::OK();
  }
  // Unique suffix match on the bare name ("owner" matches "W.owner").
  int found = -1;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const std::string& col = schema.column(i).name;
    bool match = EqualsIgnoreCase(col, ref->name());
    if (!match) {
      size_t dot = col.rfind('.');
      if (dot != std::string::npos) {
        match = EqualsIgnoreCase(col.substr(dot + 1), ref->name());
        // When the ref is qualified, the qualifier must match too.
        if (match && !ref->qualifier().empty()) {
          match = EqualsIgnoreCase(col.substr(0, dot), ref->qualifier());
        }
      } else if (!ref->qualifier().empty()) {
        match = false;
      }
    }
    if (match) {
      if (found >= 0) {
        return Status::BindError("ambiguous column reference: " +
                                 ref->FullName());
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    return Status::BindError("unresolved column reference: " + ref->FullName() +
                             " against schema " + schema.ToString());
  }
  ref->set_bound_index(found);
  return Status::OK();
}

// If `anchor` is a bound column of time/date type and `maybe_literal` is a
// string literal, re-parse the literal into the column's type so value
// comparisons stay within one type family.
void CoerceLiteralToColumnType(const Schema& schema, const Expr& anchor,
                               Expr* maybe_literal) {
  if (anchor.kind() != ExprKind::kColumnRef ||
      maybe_literal->kind() != ExprKind::kLiteral) {
    return;
  }
  const auto& ref = static_cast<const ColumnRefExpr&>(anchor);
  if (ref.bound_index() < 0) return;
  DataType col_type =
      schema.column(static_cast<size_t>(ref.bound_index())).type;
  auto* lit = static_cast<LiteralExpr*>(maybe_literal);
  if (lit->value().type() != DataType::kString) return;
  if (col_type == DataType::kTime) {
    auto parsed = Value::ParseTime(lit->value().AsString());
    if (parsed.ok()) lit->set_value(std::move(parsed).value());
  } else if (col_type == DataType::kDate) {
    auto parsed = Value::ParseDate(lit->value().AsString());
    if (parsed.ok()) lit->set_value(std::move(parsed).value());
  }
}

}  // namespace

Status BindExpr(Expr* expr, const Schema& schema) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kSubquery:
    case ExprKind::kParameter:  // nothing to resolve; substituted at execute
      return Status::OK();
    case ExprKind::kColumnRef:
      return BindColumnRef(static_cast<ColumnRefExpr*>(expr), schema);
    case ExprKind::kComparison: {
      auto* c = static_cast<ComparisonExpr*>(expr);
      SIEVE_RETURN_IF_ERROR(BindExpr(c->left().get(), schema));
      SIEVE_RETURN_IF_ERROR(BindExpr(c->right().get(), schema));
      CoerceLiteralToColumnType(schema, *c->left(), c->right().get());
      CoerceLiteralToColumnType(schema, *c->right(), c->left().get());
      return Status::OK();
    }
    case ExprKind::kBetween: {
      auto* b = static_cast<BetweenExpr*>(expr);
      SIEVE_RETURN_IF_ERROR(BindExpr(b->input().get(), schema));
      SIEVE_RETURN_IF_ERROR(BindExpr(b->lo().get(), schema));
      SIEVE_RETURN_IF_ERROR(BindExpr(b->hi().get(), schema));
      CoerceLiteralToColumnType(schema, *b->input(), b->lo().get());
      CoerceLiteralToColumnType(schema, *b->input(), b->hi().get());
      return Status::OK();
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(expr);
      SIEVE_RETURN_IF_ERROR(BindExpr(in->input().get(), schema));
      for (const auto& item : in->items()) {
        SIEVE_RETURN_IF_ERROR(BindExpr(item.get(), schema));
        CoerceLiteralToColumnType(schema, *in->input(), item.get());
      }
      return Status::OK();
    }
    case ExprKind::kAnd:
      for (const auto& c : static_cast<AndExpr*>(expr)->children()) {
        SIEVE_RETURN_IF_ERROR(BindExpr(c.get(), schema));
      }
      return Status::OK();
    case ExprKind::kOr:
      for (const auto& c : static_cast<OrExpr*>(expr)->children()) {
        SIEVE_RETURN_IF_ERROR(BindExpr(c.get(), schema));
      }
      return Status::OK();
    case ExprKind::kNot:
      return BindExpr(static_cast<NotExpr*>(expr)->child().get(), schema);
    case ExprKind::kUdfCall:
      for (const auto& a : static_cast<UdfCallExpr*>(expr)->args()) {
        SIEVE_RETURN_IF_ERROR(BindExpr(a.get(), schema));
      }
      return Status::OK();
  }
  return Status::Internal("unhandled expression kind in BindExpr");
}

}  // namespace sieve
