#include "expr/eval.h"

namespace sieve {

namespace {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

// Truth value of `v` under tri-state logic: -1 NULL, 0 false, 1 true.
int8_t TriFromValue(const Value& v) {
  if (v.is_null()) return -1;
  return v.AsBool() ? 1 : 0;
}

// A comparison/BETWEEN/IN operand resolved once per batch: either a
// constant or a bound column index. Anything else (nested expressions,
// UDFs) makes the enclosing node fall back to row-at-a-time evaluation.
struct OperandRef {
  const Value* constant = nullptr;
  int column = -1;
  const ColumnRefExpr* ref = nullptr;  // for the out-of-range error message

  const Value& Get(const Row& row) const {
    return constant != nullptr ? *constant
                               : row[static_cast<size_t>(column)];
  }

  Status CheckBounds(const Row& row) const {
    if (constant == nullptr && static_cast<size_t>(column) >= row.size()) {
      return Status::ExecutionError("column index out of range: " +
                                    ref->FullName());
    }
    return Status::OK();
  }
};

// Resolves `e` to an OperandRef, late-binding unbound column refs against
// `schema` exactly like the row-at-a-time path. Returns false when the
// operand is not batchable.
Result<bool> ResolveOperand(const Expr& e, const Schema& schema,
                            OperandRef* out) {
  if (e.kind() == ExprKind::kLiteral) {
    out->constant = &static_cast<const LiteralExpr&>(e).value();
    return true;
  }
  if (e.kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(e);
    if (ref.bound_index() < 0) {
      auto* mutable_ref = const_cast<ColumnRefExpr*>(&ref);
      SIEVE_RETURN_IF_ERROR(BindExpr(mutable_ref, schema));
    }
    out->column = ref.bound_index();
    out->ref = &ref;
    return true;
  }
  return false;
}

}  // namespace

Status Evaluator::EvalPredicateBatch(const Expr& expr, const Row* rows,
                                     size_t num_rows,
                                     std::vector<uint8_t>* pass) {
  pass->assign(num_rows, 0);
  if (num_rows == 0) return Status::OK();
  std::vector<uint32_t> active(num_rows);
  for (size_t i = 0; i < num_rows; ++i) active[i] = static_cast<uint32_t>(i);
  std::vector<int8_t> tri(num_rows, 0);
  SIEVE_RETURN_IF_ERROR(EvalBoolBatch(expr, rows, active, &tri));
  for (size_t i = 0; i < num_rows; ++i) {
    (*pass)[i] = tri[i] == 1 ? 1 : 0;  // NULL → false (WHERE semantics)
  }
  return Status::OK();
}

Status Evaluator::EvalBoolBatch(const Expr& expr, const Row* rows,
                                const std::vector<uint32_t>& active,
                                std::vector<int8_t>* tri) {
  // Row-at-a-time fallback for sub-expressions the column-wise loops do
  // not cover (UDF calls, subqueries, non-constant IN lists, nested
  // comparisons): evaluates exactly the active rows, so semantics and
  // ExecStats counters match the serial interpreter by construction.
  auto row_wise = [&](const Expr& e) -> Status {
    for (uint32_t i : active) {
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(e, rows[i]));
      (*tri)[i] = TriFromValue(v);
    }
    return Status::OK();
  };

  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      int8_t t = TriFromValue(static_cast<const LiteralExpr&>(expr).value());
      for (uint32_t i : active) (*tri)[i] = t;
      return Status::OK();
    }

    case ExprKind::kColumnRef: {
      OperandRef ref;
      SIEVE_ASSIGN_OR_RETURN(bool ok, ResolveOperand(expr, *schema_, &ref));
      if (!ok) return row_wise(expr);
      for (uint32_t i : active) {
        SIEVE_RETURN_IF_ERROR(ref.CheckBounds(rows[i]));
        (*tri)[i] = TriFromValue(ref.Get(rows[i]));
      }
      return Status::OK();
    }

    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      OperandRef left, right;
      SIEVE_ASSIGN_OR_RETURN(bool lok,
                             ResolveOperand(*cmp.left(), *schema_, &left));
      SIEVE_ASSIGN_OR_RETURN(bool rok,
                             ResolveOperand(*cmp.right(), *schema_, &right));
      if (!lok || !rok) return row_wise(expr);
      const CompareOp op = cmp.op();
      for (uint32_t i : active) {
        const Row& row = rows[i];
        SIEVE_RETURN_IF_ERROR(left.CheckBounds(row));
        SIEVE_RETURN_IF_ERROR(right.CheckBounds(row));
        const Value& l = left.Get(row);
        const Value& r = right.Get(row);
        if (stats_ != nullptr) ++stats_->comparisons;
        (*tri)[i] = (l.is_null() || r.is_null())
                        ? static_cast<int8_t>(-1)
                        : static_cast<int8_t>(CompareValues(op, l, r));
      }
      return Status::OK();
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      OperandRef input, lo, hi;
      SIEVE_ASSIGN_OR_RETURN(bool iok,
                             ResolveOperand(*between.input(), *schema_, &input));
      SIEVE_ASSIGN_OR_RETURN(bool lok,
                             ResolveOperand(*between.lo(), *schema_, &lo));
      SIEVE_ASSIGN_OR_RETURN(bool hok,
                             ResolveOperand(*between.hi(), *schema_, &hi));
      if (!iok || !lok || !hok) return row_wise(expr);
      for (uint32_t i : active) {
        const Row& row = rows[i];
        SIEVE_RETURN_IF_ERROR(input.CheckBounds(row));
        SIEVE_RETURN_IF_ERROR(lo.CheckBounds(row));
        SIEVE_RETURN_IF_ERROR(hi.CheckBounds(row));
        const Value& v = input.Get(row);
        const Value& l = lo.Get(row);
        const Value& h = hi.Get(row);
        if (stats_ != nullptr) ++stats_->comparisons;
        (*tri)[i] = (v.is_null() || l.is_null() || h.is_null())
                        ? static_cast<int8_t>(-1)
                        : static_cast<int8_t>(v.Compare(l) >= 0 &&
                                              v.Compare(h) <= 0);
      }
      return Status::OK();
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      const auto* set = in.ConstantSet();
      OperandRef input;
      SIEVE_ASSIGN_OR_RETURN(bool iok,
                             ResolveOperand(*in.input(), *schema_, &input));
      if (set == nullptr || !iok) return row_wise(expr);
      const bool negated = in.negated();
      for (uint32_t i : active) {
        const Row& row = rows[i];
        SIEVE_RETURN_IF_ERROR(input.CheckBounds(row));
        const Value& v = input.Get(row);
        if (v.is_null()) {
          (*tri)[i] = -1;
          continue;
        }
        if (stats_ != nullptr) ++stats_->comparisons;
        bool found = set->count(v) > 0;
        (*tri)[i] = static_cast<int8_t>(negated ? !found : found);
      }
      return Status::OK();
    }

    case ExprKind::kAnd: {
      // Mirror of the short-circuit conjunction: a row leaves the active
      // set at its first false/NULL child, so child k only ever sees the
      // rows for which the serial interpreter would have evaluated it.
      const auto& conj = static_cast<const AndExpr&>(expr);
      for (uint32_t i : active) (*tri)[i] = 1;
      std::vector<uint32_t> act = active;
      std::vector<uint32_t> next;
      std::vector<int8_t> child_tri(tri->size(), 0);
      for (const auto& child : conj.children()) {
        if (act.empty()) break;
        SIEVE_RETURN_IF_ERROR(EvalBoolBatch(*child, rows, act, &child_tri));
        next.clear();
        for (uint32_t i : act) {
          if (child_tri[i] == 1) {
            next.push_back(i);
          } else {
            (*tri)[i] = 0;  // NULL collapses to false, like the row path
          }
        }
        act.swap(next);
      }
      return Status::OK();
    }

    case ExprKind::kOr: {
      // Mirror of the short-circuit disjunction: a row leaves the active
      // set at its first true child; rows with only false/NULL children
      // end at false (the row path never returns NULL from OR).
      const auto& disj = static_cast<const OrExpr&>(expr);
      for (uint32_t i : active) (*tri)[i] = 0;
      std::vector<uint32_t> act = active;
      std::vector<uint32_t> next;
      std::vector<int8_t> child_tri(tri->size(), 0);
      for (const auto& child : disj.children()) {
        if (act.empty()) break;
        SIEVE_RETURN_IF_ERROR(EvalBoolBatch(*child, rows, act, &child_tri));
        next.clear();
        for (uint32_t i : act) {
          if (child_tri[i] == 1) {
            (*tri)[i] = 1;
          } else {
            next.push_back(i);
          }
        }
        act.swap(next);
      }
      return Status::OK();
    }

    case ExprKind::kNot: {
      const auto& neg = static_cast<const NotExpr&>(expr);
      std::vector<int8_t> child_tri(tri->size(), 0);
      SIEVE_RETURN_IF_ERROR(EvalBoolBatch(*neg.child(), rows, active,
                                          &child_tri));
      for (uint32_t i : active) {
        (*tri)[i] = child_tri[i] == -1 ? static_cast<int8_t>(-1)
                                       : static_cast<int8_t>(!child_tri[i]);
      }
      return Status::OK();
    }

    default:
      return row_wise(expr);
  }
}

Result<Value> Evaluator::Eval(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      int idx = ref.bound_index();
      if (idx < 0) {
        // Late binding: tolerate unbound refs by resolving on the fly.
        auto* mutable_ref = const_cast<ColumnRefExpr*>(&ref);
        SIEVE_RETURN_IF_ERROR(BindExpr(mutable_ref, *schema_));
        idx = ref.bound_index();
      }
      if (static_cast<size_t>(idx) >= row.size()) {
        return Status::ExecutionError("column index out of range: " +
                                      ref.FullName());
      }
      return row[static_cast<size_t>(idx)];
    }

    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value left, Eval(*cmp.left(), row));
      SIEVE_ASSIGN_OR_RETURN(Value right, Eval(*cmp.right(), row));
      if (stats_ != nullptr) ++stats_->comparisons;
      if (left.is_null() || right.is_null()) return Value::Null();
      return Value::Bool(CompareValues(cmp.op(), left, right));
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*between.input(), row));
      SIEVE_ASSIGN_OR_RETURN(Value lo, Eval(*between.lo(), row));
      SIEVE_ASSIGN_OR_RETURN(Value hi, Eval(*between.hi(), row));
      if (stats_ != nullptr) ++stats_->comparisons;
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*in.input(), row));
      if (v.is_null()) return Value::Null();
      // Constant IN lists are probed through a hash set (one comparison),
      // the way production engines evaluate large literal lists.
      if (const auto* set = in.ConstantSet()) {
        if (stats_ != nullptr) ++stats_->comparisons;
        bool found = set->count(v) > 0;
        return Value::Bool(in.negated() ? !found : found);
      }
      bool found = false;
      for (const auto& item : in.items()) {
        SIEVE_ASSIGN_OR_RETURN(Value candidate, Eval(*item, row));
        if (stats_ != nullptr) ++stats_->comparisons;
        if (!candidate.is_null() && v.Compare(candidate) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(in.negated() ? !found : found);
    }

    case ExprKind::kAnd: {
      const auto& conj = static_cast<const AndExpr&>(expr);
      for (const auto& child : conj.children()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
        if (v.is_null() || !v.AsBool()) return Value::Bool(false);
      }
      return Value::Bool(true);
    }

    case ExprKind::kOr: {
      const auto& disj = static_cast<const OrExpr&>(expr);
      for (const auto& child : disj.children()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
        if (!v.is_null() && v.AsBool()) return Value::Bool(true);
      }
      return Value::Bool(false);
    }

    case ExprKind::kNot: {
      const auto& neg = static_cast<const NotExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*neg.child(), row));
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.AsBool());
    }

    case ExprKind::kUdfCall: {
      const auto& call = static_cast<const UdfCallExpr&>(expr);
      if (hooks_ == nullptr) {
        return Status::ExecutionError("UDF call without engine hooks: " +
                                      call.name());
      }
      std::vector<Value> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*arg, row));
        args.push_back(std::move(v));
      }
      return hooks_->CallUdf(call.name(), args, *schema_, row, metadata_,
                             stats_);
    }

    case ExprKind::kParameter: {
      const auto& param = static_cast<const ParameterExpr&>(expr);
      return Status::ExecutionError(
          "unbound parameter " + param.ToSql() +
          ": bind values through PreparedQuery::Execute");
    }

    case ExprKind::kSubquery: {
      const auto& sub = static_cast<const SubqueryExpr&>(expr);
      if (hooks_ == nullptr) {
        return Status::ExecutionError("subquery without engine hooks");
      }
      if (stats_ != nullptr) ++stats_->subquery_execs;
      return hooks_->EvalScalarSubquery(sub.sql(), *schema_, row, metadata_,
                                        stats_);
    }
  }
  return Status::Internal("unhandled expression kind in Eval");
}

Result<bool> Evaluator::EvalPredicate(const Expr& expr, const Row& row) {
  SIEVE_ASSIGN_OR_RETURN(Value v, Eval(expr, row));
  if (v.is_null()) return false;
  return v.AsBool();
}

}  // namespace sieve
