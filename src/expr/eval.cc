#include "expr/eval.h"

namespace sieve {

namespace {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

Result<Value> Evaluator::Eval(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      int idx = ref.bound_index();
      if (idx < 0) {
        // Late binding: tolerate unbound refs by resolving on the fly.
        auto* mutable_ref = const_cast<ColumnRefExpr*>(&ref);
        SIEVE_RETURN_IF_ERROR(BindExpr(mutable_ref, *schema_));
        idx = ref.bound_index();
      }
      if (static_cast<size_t>(idx) >= row.size()) {
        return Status::ExecutionError("column index out of range: " +
                                      ref.FullName());
      }
      return row[static_cast<size_t>(idx)];
    }

    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value left, Eval(*cmp.left(), row));
      SIEVE_ASSIGN_OR_RETURN(Value right, Eval(*cmp.right(), row));
      if (stats_ != nullptr) ++stats_->comparisons;
      if (left.is_null() || right.is_null()) return Value::Null();
      return Value::Bool(CompareValues(cmp.op(), left, right));
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*between.input(), row));
      SIEVE_ASSIGN_OR_RETURN(Value lo, Eval(*between.lo(), row));
      SIEVE_ASSIGN_OR_RETURN(Value hi, Eval(*between.hi(), row));
      if (stats_ != nullptr) ++stats_->comparisons;
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*in.input(), row));
      if (v.is_null()) return Value::Null();
      // Constant IN lists are probed through a hash set (one comparison),
      // the way production engines evaluate large literal lists.
      if (const auto* set = in.ConstantSet()) {
        if (stats_ != nullptr) ++stats_->comparisons;
        bool found = set->count(v) > 0;
        return Value::Bool(in.negated() ? !found : found);
      }
      bool found = false;
      for (const auto& item : in.items()) {
        SIEVE_ASSIGN_OR_RETURN(Value candidate, Eval(*item, row));
        if (stats_ != nullptr) ++stats_->comparisons;
        if (!candidate.is_null() && v.Compare(candidate) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(in.negated() ? !found : found);
    }

    case ExprKind::kAnd: {
      const auto& conj = static_cast<const AndExpr&>(expr);
      for (const auto& child : conj.children()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
        if (v.is_null() || !v.AsBool()) return Value::Bool(false);
      }
      return Value::Bool(true);
    }

    case ExprKind::kOr: {
      const auto& disj = static_cast<const OrExpr&>(expr);
      for (const auto& child : disj.children()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
        if (!v.is_null() && v.AsBool()) return Value::Bool(true);
      }
      return Value::Bool(false);
    }

    case ExprKind::kNot: {
      const auto& neg = static_cast<const NotExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*neg.child(), row));
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.AsBool());
    }

    case ExprKind::kUdfCall: {
      const auto& call = static_cast<const UdfCallExpr&>(expr);
      if (hooks_ == nullptr) {
        return Status::ExecutionError("UDF call without engine hooks: " +
                                      call.name());
      }
      std::vector<Value> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*arg, row));
        args.push_back(std::move(v));
      }
      return hooks_->CallUdf(call.name(), args, *schema_, row, metadata_,
                             stats_);
    }

    case ExprKind::kParameter: {
      const auto& param = static_cast<const ParameterExpr&>(expr);
      return Status::ExecutionError(
          "unbound parameter " + param.ToSql() +
          ": bind values through PreparedQuery::Execute");
    }

    case ExprKind::kSubquery: {
      const auto& sub = static_cast<const SubqueryExpr&>(expr);
      if (hooks_ == nullptr) {
        return Status::ExecutionError("subquery without engine hooks");
      }
      if (stats_ != nullptr) ++stats_->subquery_execs;
      return hooks_->EvalScalarSubquery(sub.sql(), *schema_, row, metadata_,
                                        stats_);
    }
  }
  return Status::Internal("unhandled expression kind in Eval");
}

Result<bool> Evaluator::EvalPredicate(const Expr& expr, const Row& row) {
  SIEVE_ASSIGN_OR_RETURN(Value v, Eval(expr, row));
  if (v.is_null()) return false;
  return v.AsBool();
}

}  // namespace sieve
