#include "expr/eval.h"

namespace sieve {

namespace {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

// Truth value of `v` under tri-state logic: -1 NULL, 0 false, 1 true.
int8_t TriFromValue(const Value& v) {
  if (v.is_null()) return -1;
  return v.AsBool() ? 1 : 0;
}

// Type family mirror of Value::Compare's Family(): numbers compare
// numerically, everything else within its own family only.
int TypeFamily(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt:
    case DataType::kDouble:
      return 2;
    case DataType::kTime:
      return 3;
    case DataType::kDate:
      return 4;
    case DataType::kString:
      return 5;
  }
  return 6;
}

bool IsI64Repr(DataType t) {
  return t == DataType::kBool || t == DataType::kInt || t == DataType::kTime ||
         t == DataType::kDate;
}

// Operator for the operand-swapped comparison: (a op b) == (b flip(op) a).
CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

// Verdict lookup for a three-way comparison outcome: lut[c + 1] is the
// predicate's truth value when Compare returned c. Hoisting the CompareOp
// switch out of the inner loops keeps them branch-free.
struct CmpLut {
  int8_t v[3];
  explicit CmpLut(CompareOp op) {
    auto verdict = [op](int c) -> int8_t {
      switch (op) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      return 0;
    };
    v[0] = verdict(-1);
    v[1] = verdict(0);
    v[2] = verdict(1);
  }
  int8_t operator[](int c) const { return v[c + 1]; }
};

inline int CmpI64(int64_t a, int64_t b) { return (a > b) - (a < b); }
inline int CmpF64(double a, double b) { return (a > b) - (a < b); }
inline int CmpStr(std::string_view a, std::string_view b) {
  int c = a.compare(b);
  return (c > 0) - (c < 0);
}

// A cell decomposed for comparison without constructing a Value.
struct CellRef {
  DataType type = DataType::kNull;
  int64_t i = 0;
  double d = 0.0;
  std::string_view s;

  bool is_null() const { return type == DataType::kNull; }
  double AsDouble() const {
    return type == DataType::kDouble ? d : static_cast<double>(i);
  }
};

CellRef CellFromValue(const Value& v) {
  CellRef c;
  c.type = v.type();
  switch (v.type()) {
    case DataType::kDouble:
      c.d = v.AsDouble();
      break;
    case DataType::kString:
      c.s = v.AsString();
      break;
    default:
      c.i = v.raw();
      break;
  }
  return c;
}

CellRef CellFromColumn(const RowBatch::Column& col, size_t p) {
  if (col.generic) return CellFromValue(col.cells[p]);
  CellRef c;
  if (col.nulls[p]) return c;
  c.type = col.type;
  switch (col.type) {
    case DataType::kDouble:
      c.d = col.f64[p];
      break;
    case DataType::kString:
      c.s = col.str[p];
      break;
    default:
      c.i = col.i64[p];
      break;
  }
  return c;
}

// Exact mirror of Value::Compare over decomposed cells.
int CompareCells(const CellRef& a, const CellRef& b) {
  int fa = TypeFamily(a.type);
  int fb = TypeFamily(b.type);
  if (fa != fb) return fa < fb ? -1 : 1;
  switch (a.type) {
    case DataType::kNull:
      return 0;
    case DataType::kString:
      return CmpStr(a.s, b.s);
    case DataType::kInt:
    case DataType::kDouble:
      if (a.type == DataType::kInt && b.type == DataType::kInt) {
        return CmpI64(a.i, b.i);
      }
      return CmpF64(a.AsDouble(), b.AsDouble());
    default:
      return CmpI64(a.i, b.i);
  }
}

// A comparison/BETWEEN/IN operand resolved once per batch: either a
// constant or a bound column index. Anything else (nested expressions,
// UDFs) makes the enclosing node fall back to row-at-a-time evaluation.
struct BatchOperand {
  const Value* constant = nullptr;
  int column = -1;
  const ColumnRefExpr* ref = nullptr;  // for the out-of-range error message

  Status CheckBounds(const RowBatch& batch) const {
    if (constant == nullptr &&
        static_cast<size_t>(column) >= batch.num_columns()) {
      return Status::ExecutionError("column index out of range: " +
                                    ref->FullName());
    }
    return Status::OK();
  }
};

// Resolves `e` to a BatchOperand, late-binding unbound column refs against
// `schema` exactly like the row-at-a-time path. Returns false when the
// operand is not batchable.
Result<bool> ResolveOperand(const Expr& e, const Schema& schema,
                            BatchOperand* out) {
  if (e.kind() == ExprKind::kLiteral) {
    out->constant = &static_cast<const LiteralExpr&>(e).value();
    return true;
  }
  if (e.kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(e);
    if (ref.bound_index() < 0) {
      auto* mutable_ref = const_cast<ColumnRefExpr*>(&ref);
      SIEVE_RETURN_IF_ERROR(BindExpr(mutable_ref, schema));
    }
    out->column = ref.bound_index();
    out->ref = &ref;
    return true;
  }
  return false;
}

// Runs f(p) over the physical index of every active row, writing the
// result into tri at the row's active position. The dense case (no
// selection vector, all rows active — the hot scan→filter path) collapses
// to a straight-line loop over [0, n) that the auto-vectorizer can SIMD.
// Active sets are strictly increasing subsets of [0, size), so a full-
// size active set with no selection is exactly the identity mapping.
template <typename F>
inline void ApplyKernel(const RowBatch& batch,
                        const std::vector<uint32_t>& active,
                        std::vector<int8_t>* tri, F&& f) {
  if (batch.selection() == nullptr && active.size() == batch.size()) {
    const size_t n = active.size();
    int8_t* t = tri->data();
    for (size_t p = 0; p < n; ++p) t[p] = f(p);
    return;
  }
  for (uint32_t k : active) (*tri)[k] = f(batch.RowIndexAt(k));
}

// Tri-state verdict of one comparison evaluation per active row. Tier A:
// branch-free typed loops for the common shapes (typed column vs constant,
// typed column vs typed column). Tier B: the general CellRef loop — still
// columnar and Value-free, just not branch-free.
void CompareKernel(const RowBatch& batch, const std::vector<uint32_t>& active,
                   const BatchOperand& left, const BatchOperand& right,
                   CompareOp op, std::vector<int8_t>* tri) {
  const CmpLut lut(op);

  // Constant vs constant: one evaluation covers every active row.
  if (left.constant != nullptr && right.constant != nullptr) {
    const int8_t t = (left.constant->is_null() || right.constant->is_null())
                         ? static_cast<int8_t>(-1)
                         : lut[CompareCells(CellFromValue(*left.constant),
                                            CellFromValue(*right.constant))];
    ApplyKernel(batch, active, tri, [t](size_t) { return t; });
    return;
  }

  // Column vs constant (either side; comparison flips the lut, not the
  // loop): the guard hot path.
  if (left.constant != nullptr || right.constant != nullptr) {
    const bool const_on_right = right.constant != nullptr;
    const Value& cv = const_on_right ? *right.constant : *left.constant;
    const RowBatch::Column& col = batch.column(static_cast<size_t>(
        const_on_right ? left.column : right.column));

    if (cv.is_null()) {
      // NULL constant: every evaluation yields NULL.
      ApplyKernel(batch, active, tri,
                  [](size_t) { return static_cast<int8_t>(-1); });
      return;
    }

    if (!col.generic) {
      if (col.type == DataType::kNull) {
        // Every cell of the column is NULL.
        ApplyKernel(batch, active, tri,
                    [](size_t) { return static_cast<int8_t>(-1); });
        return;
      }
      const int col_fam = TypeFamily(col.type);
      const int cv_fam = TypeFamily(cv.type());
      const uint8_t* nulls = col.nulls;
      if (col_fam != cv_fam) {
        // Cross-family comparison: constant verdict for non-null cells.
        int c = col_fam < cv_fam ? -1 : 1;
        if (!const_on_right) c = -c;
        const int8_t t = lut[c];
        ApplyKernel(batch, active, tri, [nulls, t](size_t p) {
          return nulls[p] ? static_cast<int8_t>(-1) : t;
        });
        return;
      }
      // Tier A typed loops. The sign flip for constant-on-left reuses the
      // same loops with a mirrored lut.
      const CmpLut dir = const_on_right ? lut : CmpLut(FlipCompareOp(op));
      if (IsI64Repr(col.type) &&
          !(col.type == DataType::kInt && cv.type() == DataType::kDouble)) {
        const int64_t* data = col.i64;
        const int64_t c = cv.raw();
        ApplyKernel(batch, active, tri, [nulls, data, c, &dir](size_t p) {
          return nulls[p] ? static_cast<int8_t>(-1) : dir[CmpI64(data[p], c)];
        });
        return;
      }
      if (col.type == DataType::kInt || col.type == DataType::kDouble) {
        // Numeric family with a double on either side: compare as double.
        const double c = cv.AsDouble();
        if (col.type == DataType::kDouble) {
          const double* data = col.f64;
          ApplyKernel(batch, active, tri, [nulls, data, c, &dir](size_t p) {
            return nulls[p] ? static_cast<int8_t>(-1)
                            : dir[CmpF64(data[p], c)];
          });
        } else {
          const int64_t* data = col.i64;
          ApplyKernel(batch, active, tri, [nulls, data, c, &dir](size_t p) {
            return nulls[p] ? static_cast<int8_t>(-1)
                            : dir[CmpF64(static_cast<double>(data[p]), c)];
          });
        }
        return;
      }
      if (col.type == DataType::kString) {
        const std::string_view* data = col.str;
        const std::string_view c(cv.AsString());
        ApplyKernel(batch, active, tri, [nulls, data, c, &dir](size_t p) {
          return nulls[p] ? static_cast<int8_t>(-1) : dir[CmpStr(data[p], c)];
        });
        return;
      }
    }

    // Tier B: demoted column vs constant.
    const CellRef cc = CellFromValue(cv);
    if (const_on_right) {
      ApplyKernel(batch, active, tri, [&col, &cc, &lut](size_t p) {
        CellRef a = CellFromColumn(col, p);
        return a.is_null() ? static_cast<int8_t>(-1)
                           : lut[CompareCells(a, cc)];
      });
    } else {
      ApplyKernel(batch, active, tri, [&col, &cc, &lut](size_t p) {
        CellRef b = CellFromColumn(col, p);
        return b.is_null() ? static_cast<int8_t>(-1)
                           : lut[CompareCells(cc, b)];
      });
    }
    return;
  }

  // Column vs column.
  const RowBatch::Column& lc = batch.column(static_cast<size_t>(left.column));
  const RowBatch::Column& rc = batch.column(static_cast<size_t>(right.column));
  if (!lc.generic && !rc.generic && IsI64Repr(lc.type) &&
      IsI64Repr(rc.type) && TypeFamily(lc.type) == TypeFamily(rc.type)) {
    // Tier A: both sides int64-repr in the same family (covers int-int,
    // time-time, date-date, bool-bool). Int-vs-double shares a family but
    // is NOT eligible — the double side has no i64 array and the
    // comparison must run as doubles (Tier B via CompareCells).
    const uint8_t* ln = lc.nulls;
    const uint8_t* rn = rc.nulls;
    const int64_t* la = lc.i64;
    const int64_t* ra = rc.i64;
    ApplyKernel(batch, active, tri, [ln, rn, la, ra, &lut](size_t p) {
      return (ln[p] | rn[p]) ? static_cast<int8_t>(-1)
                             : lut[CmpI64(la[p], ra[p])];
    });
    return;
  }
  // Tier B: the general columnar loop.
  ApplyKernel(batch, active, tri, [&lc, &rc, &lut](size_t p) {
    CellRef a = CellFromColumn(lc, p);
    CellRef b = CellFromColumn(rc, p);
    return (a.is_null() || b.is_null()) ? static_cast<int8_t>(-1)
                                        : lut[CompareCells(a, b)];
  });
}

}  // namespace

Status Evaluator::EvalPredicateBatch(const Expr& expr, const RowBatch& batch,
                                     std::vector<uint8_t>* pass) {
  const size_t n = batch.size();
  pass->assign(n, 0);
  if (n == 0) return Status::OK();
  std::vector<uint32_t> active(n);
  for (size_t k = 0; k < n; ++k) active[k] = static_cast<uint32_t>(k);
  std::vector<int8_t> tri(n, 0);
  SIEVE_RETURN_IF_ERROR(EvalBoolBatch(expr, batch, active, &tri));
  for (size_t k = 0; k < n; ++k) {
    (*pass)[k] = tri[k] == 1 ? 1 : 0;  // NULL → false (WHERE semantics)
  }
  return Status::OK();
}

Status Evaluator::EvalPredicateBatch(const Expr& expr, const Row* rows,
                                     size_t num_rows,
                                     std::vector<uint8_t>* pass) {
  pass->assign(num_rows, 0);
  if (num_rows == 0) return Status::OK();
  bool uniform = true;
  for (size_t i = 1; i < num_rows; ++i) {
    if (rows[i].size() != rows[0].size()) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    // Ragged rows cannot stage into one columnar batch; the row path is
    // identical by the batch/row equivalence contract.
    for (size_t i = 0; i < num_rows; ++i) {
      SIEVE_ASSIGN_OR_RETURN(bool v, EvalPredicate(expr, rows[i]));
      (*pass)[i] = v ? 1 : 0;
    }
    return Status::OK();
  }
  RowBatch staged(num_rows);
  for (size_t i = 0; i < num_rows; ++i) staged.AppendExternalRow(rows[i]);
  return EvalPredicateBatch(expr, staged, pass);
}

Status Evaluator::EvalBoolBatch(const Expr& expr, const RowBatch& batch,
                                const std::vector<uint32_t>& active,
                                std::vector<int8_t>* tri) {
  // Row-at-a-time fallback for sub-expressions the column kernels do not
  // cover (UDF calls, subqueries, non-constant IN lists, nested
  // comparisons): materializes and evaluates exactly the active rows, so
  // semantics and ExecStats counters match the serial interpreter by
  // construction.
  auto row_wise = [&](const Expr& e) -> Status {
    for (uint32_t k : active) {
      batch.MaterializeRow(k, &scratch_row_);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(e, scratch_row_));
      (*tri)[k] = TriFromValue(v);
    }
    return Status::OK();
  };

  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const int8_t t =
          TriFromValue(static_cast<const LiteralExpr&>(expr).value());
      for (uint32_t k : active) (*tri)[k] = t;
      return Status::OK();
    }

    case ExprKind::kColumnRef: {
      BatchOperand ref;
      SIEVE_ASSIGN_OR_RETURN(bool ok, ResolveOperand(expr, *schema_, &ref));
      if (!ok) return row_wise(expr);
      SIEVE_RETURN_IF_ERROR(ref.CheckBounds(batch));
      const RowBatch::Column& col =
          batch.column(static_cast<size_t>(ref.column));
      if (col.generic) {
        ApplyKernel(batch, active, tri, [&col](size_t p) {
          return TriFromValue(col.cells[p]);
        });
      } else if (IsI64Repr(col.type)) {
        const uint8_t* nulls = col.nulls;
        const int64_t* data = col.i64;
        ApplyKernel(batch, active, tri, [nulls, data](size_t p) {
          return nulls[p] ? static_cast<int8_t>(-1)
                          : static_cast<int8_t>(data[p] != 0);
        });
      } else {
        // kNull (all cells NULL), kDouble and kString: Value::AsBool reads
        // the integer payload, which is 0 for these — non-null cells are
        // uniformly false, exactly like the row path.
        const uint8_t* nulls = col.nulls;
        ApplyKernel(batch, active, tri, [nulls, &col](size_t p) {
          return (col.type == DataType::kNull || nulls[p])
                     ? static_cast<int8_t>(-1)
                     : static_cast<int8_t>(0);
        });
      }
      return Status::OK();
    }

    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      BatchOperand left, right;
      SIEVE_ASSIGN_OR_RETURN(bool lok,
                             ResolveOperand(*cmp.left(), *schema_, &left));
      SIEVE_ASSIGN_OR_RETURN(bool rok,
                             ResolveOperand(*cmp.right(), *schema_, &right));
      if (!lok || !rok) return row_wise(expr);
      SIEVE_RETURN_IF_ERROR(left.CheckBounds(batch));
      SIEVE_RETURN_IF_ERROR(right.CheckBounds(batch));
      // The row path counts one comparison per evaluated row, before the
      // null check.
      if (stats_ != nullptr) stats_->comparisons += active.size();
      CompareKernel(batch, active, left, right, cmp.op(), tri);
      return Status::OK();
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      BatchOperand input, lo, hi;
      SIEVE_ASSIGN_OR_RETURN(
          bool iok, ResolveOperand(*between.input(), *schema_, &input));
      SIEVE_ASSIGN_OR_RETURN(bool lok,
                             ResolveOperand(*between.lo(), *schema_, &lo));
      SIEVE_ASSIGN_OR_RETURN(bool hok,
                             ResolveOperand(*between.hi(), *schema_, &hi));
      if (!iok || !lok || !hok) return row_wise(expr);
      SIEVE_RETURN_IF_ERROR(input.CheckBounds(batch));
      SIEVE_RETURN_IF_ERROR(lo.CheckBounds(batch));
      SIEVE_RETURN_IF_ERROR(hi.CheckBounds(batch));
      if (stats_ != nullptr) stats_->comparisons += active.size();

      // Tier A: typed column between two same-family int64 constants — the
      // shape of every time/date guard range.
      if (input.constant == nullptr && lo.constant != nullptr &&
          hi.constant != nullptr && !lo.constant->is_null() &&
          !hi.constant->is_null()) {
        const RowBatch::Column& col =
            batch.column(static_cast<size_t>(input.column));
        if (!col.generic && IsI64Repr(col.type) &&
            lo.constant->type() == col.type &&
            hi.constant->type() == col.type) {
          const uint8_t* nulls = col.nulls;
          const int64_t* data = col.i64;
          const int64_t l = lo.constant->raw();
          const int64_t h = hi.constant->raw();
          ApplyKernel(batch, active, tri, [nulls, data, l, h](size_t p) {
            return nulls[p] ? static_cast<int8_t>(-1)
                            : static_cast<int8_t>(data[p] >= l && data[p] <= h);
          });
          return Status::OK();
        }
      }

      // Tier B: general columnar loop.
      auto cell_of = [&batch](const BatchOperand& o, size_t p) {
        return o.constant != nullptr
                   ? CellFromValue(*o.constant)
                   : CellFromColumn(batch.column(static_cast<size_t>(o.column)),
                                    p);
      };
      ApplyKernel(batch, active, tri, [&](size_t p) {
        CellRef v = cell_of(input, p);
        CellRef l = cell_of(lo, p);
        CellRef h = cell_of(hi, p);
        return (v.is_null() || l.is_null() || h.is_null())
                   ? static_cast<int8_t>(-1)
                   : static_cast<int8_t>(CompareCells(v, l) >= 0 &&
                                         CompareCells(v, h) <= 0);
      });
      return Status::OK();
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      const auto* set = in.ConstantSet();
      BatchOperand input;
      SIEVE_ASSIGN_OR_RETURN(bool iok,
                             ResolveOperand(*in.input(), *schema_, &input));
      if (set == nullptr || !iok) return row_wise(expr);
      SIEVE_RETURN_IF_ERROR(input.CheckBounds(batch));
      const bool negated = in.negated();
      // The row path counts one comparison per non-null input only; the
      // hash-set probe needs a Value, so reconstruct per active row (IN
      // nodes are rare next to comparison guards).
      for (uint32_t k : active) {
        Value v = input.constant != nullptr
                      ? *input.constant
                      : batch.ValueAt(k, static_cast<size_t>(input.column));
        if (v.is_null()) {
          (*tri)[k] = -1;
          continue;
        }
        if (stats_ != nullptr) ++stats_->comparisons;
        bool found = set->count(v) > 0;
        (*tri)[k] = static_cast<int8_t>(negated ? !found : found);
      }
      return Status::OK();
    }

    case ExprKind::kAnd: {
      // Mirror of the short-circuit conjunction: a row leaves the active
      // set at its first false/NULL child, so child k only ever sees the
      // rows for which the serial interpreter would have evaluated it.
      const auto& conj = static_cast<const AndExpr&>(expr);
      for (uint32_t k : active) (*tri)[k] = 1;
      std::vector<uint32_t> act = active;
      std::vector<uint32_t> next;
      std::vector<int8_t> child_tri(tri->size(), 0);
      for (const auto& child : conj.children()) {
        if (act.empty()) break;
        SIEVE_RETURN_IF_ERROR(EvalBoolBatch(*child, batch, act, &child_tri));
        next.clear();
        for (uint32_t k : act) {
          if (child_tri[k] == 1) {
            next.push_back(k);
          } else {
            (*tri)[k] = 0;  // NULL collapses to false, like the row path
          }
        }
        act.swap(next);
      }
      return Status::OK();
    }

    case ExprKind::kOr: {
      // Mirror of the short-circuit disjunction: a row leaves the active
      // set at its first true child; rows with only false/NULL children
      // end at false (the row path never returns NULL from OR).
      const auto& disj = static_cast<const OrExpr&>(expr);
      for (uint32_t k : active) (*tri)[k] = 0;
      std::vector<uint32_t> act = active;
      std::vector<uint32_t> next;
      std::vector<int8_t> child_tri(tri->size(), 0);
      for (const auto& child : disj.children()) {
        if (act.empty()) break;
        SIEVE_RETURN_IF_ERROR(EvalBoolBatch(*child, batch, act, &child_tri));
        next.clear();
        for (uint32_t k : act) {
          if (child_tri[k] == 1) {
            (*tri)[k] = 1;
          } else {
            next.push_back(k);
          }
        }
        act.swap(next);
      }
      return Status::OK();
    }

    case ExprKind::kNot: {
      const auto& neg = static_cast<const NotExpr&>(expr);
      std::vector<int8_t> child_tri(tri->size(), 0);
      SIEVE_RETURN_IF_ERROR(
          EvalBoolBatch(*neg.child(), batch, active, &child_tri));
      for (uint32_t k : active) {
        (*tri)[k] = child_tri[k] == -1 ? static_cast<int8_t>(-1)
                                       : static_cast<int8_t>(!child_tri[k]);
      }
      return Status::OK();
    }

    default:
      return row_wise(expr);
  }
}

Result<Value> Evaluator::Eval(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();

    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      int idx = ref.bound_index();
      if (idx < 0) {
        // Late binding: tolerate unbound refs by resolving on the fly.
        auto* mutable_ref = const_cast<ColumnRefExpr*>(&ref);
        SIEVE_RETURN_IF_ERROR(BindExpr(mutable_ref, *schema_));
        idx = ref.bound_index();
      }
      if (static_cast<size_t>(idx) >= row.size()) {
        return Status::ExecutionError("column index out of range: " +
                                      ref.FullName());
      }
      return row[static_cast<size_t>(idx)];
    }

    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value left, Eval(*cmp.left(), row));
      SIEVE_ASSIGN_OR_RETURN(Value right, Eval(*cmp.right(), row));
      if (stats_ != nullptr) ++stats_->comparisons;
      if (left.is_null() || right.is_null()) return Value::Null();
      return Value::Bool(CompareValues(cmp.op(), left, right));
    }

    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*between.input(), row));
      SIEVE_ASSIGN_OR_RETURN(Value lo, Eval(*between.lo(), row));
      SIEVE_ASSIGN_OR_RETURN(Value hi, Eval(*between.hi(), row));
      if (stats_ != nullptr) ++stats_->comparisons;
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*in.input(), row));
      if (v.is_null()) return Value::Null();
      // Constant IN lists are probed through a hash set (one comparison),
      // the way production engines evaluate large literal lists.
      if (const auto* set = in.ConstantSet()) {
        if (stats_ != nullptr) ++stats_->comparisons;
        bool found = set->count(v) > 0;
        return Value::Bool(in.negated() ? !found : found);
      }
      bool found = false;
      for (const auto& item : in.items()) {
        SIEVE_ASSIGN_OR_RETURN(Value candidate, Eval(*item, row));
        if (stats_ != nullptr) ++stats_->comparisons;
        if (!candidate.is_null() && v.Compare(candidate) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(in.negated() ? !found : found);
    }

    case ExprKind::kAnd: {
      const auto& conj = static_cast<const AndExpr&>(expr);
      for (const auto& child : conj.children()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
        if (v.is_null() || !v.AsBool()) return Value::Bool(false);
      }
      return Value::Bool(true);
    }

    case ExprKind::kOr: {
      const auto& disj = static_cast<const OrExpr&>(expr);
      for (const auto& child : disj.children()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
        if (!v.is_null() && v.AsBool()) return Value::Bool(true);
      }
      return Value::Bool(false);
    }

    case ExprKind::kNot: {
      const auto& neg = static_cast<const NotExpr&>(expr);
      SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*neg.child(), row));
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.AsBool());
    }

    case ExprKind::kUdfCall: {
      const auto& call = static_cast<const UdfCallExpr&>(expr);
      if (hooks_ == nullptr) {
        return Status::ExecutionError("UDF call without engine hooks: " +
                                      call.name());
      }
      std::vector<Value> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        SIEVE_ASSIGN_OR_RETURN(Value v, Eval(*arg, row));
        args.push_back(std::move(v));
      }
      return hooks_->CallUdf(call.name(), args, *schema_, row, metadata_,
                             stats_);
    }

    case ExprKind::kParameter: {
      const auto& param = static_cast<const ParameterExpr&>(expr);
      return Status::ExecutionError(
          "unbound parameter " + param.ToSql() +
          ": bind values through PreparedQuery::Execute");
    }

    case ExprKind::kSubquery: {
      const auto& sub = static_cast<const SubqueryExpr&>(expr);
      if (hooks_ == nullptr) {
        return Status::ExecutionError("subquery without engine hooks");
      }
      if (stats_ != nullptr) ++stats_->subquery_execs;
      return hooks_->EvalScalarSubquery(sub.sql(), *schema_, row, metadata_,
                                        stats_);
    }
  }
  return Status::Internal("unhandled expression kind in Eval");
}

Result<bool> Evaluator::EvalPredicate(const Expr& expr, const Row& row) {
  SIEVE_ASSIGN_OR_RETURN(Value v, Eval(expr, row));
  if (v.is_null()) return false;
  return v.AsBool();
}

}  // namespace sieve
