#ifndef SIEVE_WORKLOAD_QUERY_GEN_H_
#define SIEVE_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/hospital.h"
#include "workload/tippers.h"

namespace sieve {

/// Query cardinality classes used throughout Section 7.
enum class QuerySelectivity { kLow, kMid, kHigh };

const char* QuerySelectivityName(QuerySelectivity s);

/// Generates the SmartBench-derived query templates of Section 7.1 against
/// the TIPPERS dataset:
///   Q1 — devices seen at a list of locations in a time/date window
///        (location surveillance);
///   Q2 — events of a list of devices in a time/date window
///        (device surveillance);
///   Q3 — events of a user group in a time/date window (analytics join with
///        User_Group_Membership).
class TippersQueryGenerator {
 public:
  TippersQueryGenerator(const TippersDataset& ds, uint64_t seed = 11)
      : ds_(&ds), rng_(seed) {}

  std::string Q1(QuerySelectivity sel);
  std::string Q2(QuerySelectivity sel);
  std::string Q3(QuerySelectivity sel, int group_id);

  /// A SELECT-ALL query over the whole WiFi dataset (Experiments 4 and 5).
  static std::string SelectAll();

 private:
  struct Window {
    int64_t t1, t2;  // seconds
    int64_t d1, d2;  // day offsets
  };
  Window MakeWindow(QuerySelectivity sel);

  const TippersDataset* ds_;
  Rng rng_;
};

/// Query shapes of the hospital scenario, mirroring how staff actually
/// read EHR data:
///   HQ1 — ward census: encounters at a list of wards in a time/date
///         window (the nurse-station view);
///   HQ2 — patient history: encounters of a list of patients in a date
///         window (chart review);
///   HQ3 — severe diagnoses joined with their encounters in a date window
///         (research/QA cohort extraction).
class HospitalQueryGenerator {
 public:
  HospitalQueryGenerator(const HospitalDataset& ds, uint64_t seed = 13)
      : ds_(&ds), rng_(seed) {}

  std::string HQ1(QuerySelectivity sel);
  std::string HQ2(QuerySelectivity sel);
  std::string HQ3(QuerySelectivity sel);

  static std::string SelectAllEncounters();
  static std::string SelectAllDiagnoses();

 private:
  struct Window {
    int64_t t1, t2;  // seconds
    int64_t d1, d2;  // day offsets
  };
  Window MakeWindow(QuerySelectivity sel);

  const HospitalDataset* ds_;
  Rng rng_;
};

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_QUERY_GEN_H_
