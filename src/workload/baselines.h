#ifndef SIEVE_WORKLOAD_BASELINES_H_
#define SIEVE_WORKLOAD_BASELINES_H_

#include <string>

#include "engine/database.h"
#include "parser/ast.h"
#include "policy/policy_store.h"

namespace sieve {

/// The three access-control baselines of Experiment 3 (Section 7.2):
///   kP — traditional query rewrite: the querier's policies are appended to
///        the query WHERE clause as one big DNF;
///   kI — one index scan per policy, forced via index hints, UNIONed;
///   kU — a per-tuple UDF evaluates the querier's policies (filters them by
///        tuple owner first, like Δ, but with no guards in front).
enum class BaselineKind { kP, kI, kU };

const char* BaselineName(BaselineKind kind);

/// Rewrites queries per baseline and executes them on the engine.
class Baselines {
 public:
  Baselines(Database* db, PolicyStore* policies, const GroupResolver* resolver)
      : db_(db), policies_(policies), resolver_(resolver) {}

  /// Registers the policy-check UDF used by BaselineU.
  Status Init();

  Result<SelectStmtPtr> Rewrite(BaselineKind kind, const SelectStmt& query,
                                const QueryMetadata& md);

  /// Parse + rewrite + execute with a timeout (seconds; 0 = none).
  Result<ResultSet> Execute(BaselineKind kind, const std::string& sql,
                            const QueryMetadata& md, double timeout_seconds);

 private:
  Result<SelectStmtPtr> RewriteP(const SelectStmt& query,
                                 const QueryMetadata& md);
  Result<SelectStmtPtr> RewriteI(const SelectStmt& query,
                                 const QueryMetadata& md);
  Result<SelectStmtPtr> RewriteU(const SelectStmt& query,
                                 const QueryMetadata& md);

  /// Protected tables referenced by the query (tables with any policy).
  std::vector<std::string> ProtectedTables(const SelectStmt& query) const;

  Database* db_;
  PolicyStore* policies_;
  const GroupResolver* resolver_;
};

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_BASELINES_H_
