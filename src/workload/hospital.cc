#include "workload/hospital.h"

#include <algorithm>
#include <iterator>

namespace sieve {

std::vector<int> HospitalDataset::StaffWithRole(
    const std::string& role) const {
  std::vector<int> out;
  for (size_t i = 0; i < staff_role.size(); ++i) {
    if (staff_role[i] == role) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> HospitalDataset::ConsentedPatients() const {
  std::vector<int> out;
  for (size_t i = 0; i < consented.size(); ++i) {
    if (consented[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> HospitalDataset::ChronicPatients() const {
  std::vector<int> out;
  for (size_t i = 0; i < chronic.size(); ++i) {
    if (chronic[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

Result<HospitalDataset> HospitalGenerator::Populate(Database* db) const {
  HospitalDataset ds;
  ds.config = config_;
  Rng rng(config_.seed);

  SIEVE_ASSIGN_OR_RETURN(Value start, Value::ParseDate(config_.start_date));
  ds.first_day = start.raw();

  // ---- Schema ----
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Patients", Schema({{"id", DataType::kInt},
                          {"mrn", DataType::kString},
                          {"ward", DataType::kInt},
                          {"consent", DataType::kInt}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Staff", Schema({{"id", DataType::kInt},
                       {"name", DataType::kString},
                       {"role", DataType::kString},
                       {"ward", DataType::kInt}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Encounters", Schema({{"id", DataType::kInt},
                            {"patient_id", DataType::kInt},
                            {"staff_id", DataType::kInt},
                            {"ward", DataType::kInt},
                            {"enc_time", DataType::kTime},
                            {"enc_date", DataType::kDate}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Diagnoses", Schema({{"id", DataType::kInt},
                           {"encounter_id", DataType::kInt},
                           {"patient_id", DataType::kInt},
                           {"code", DataType::kString},
                           {"severity", DataType::kInt},
                           {"diag_date", DataType::kDate}})));

  // ---- Staff: roles, wards, groups ----
  // A ward team is mostly doctors and nurses; researchers, billing clerks
  // and admins are hospital-wide minorities.
  const struct {
    const char* name;
    double fraction;
  } kRoles[] = {{"doctor", 0.30},
                {"nurse", 0.40},
                {"researcher", 0.10},
                {"billing", 0.10},
                {"admin", 0.10}};

  ds.staff_role.resize(static_cast<size_t>(config_.num_staff));
  ds.staff_ward.resize(static_cast<size_t>(config_.num_staff));
  for (int s = 0; s < config_.num_staff; ++s) {
    double roll = rng.NextDouble();
    double acc = 0.0;
    std::string role = "admin";
    for (const auto& r : kRoles) {
      acc += r.fraction;
      if (roll < acc) {
        role = r.name;
        break;
      }
    }
    // Guarantee the policy-defining roles exist even at tiny staff counts
    // (the fuzz harness runs scaled-down worlds).
    if (s == 0) role = "doctor";
    if (s == 1) role = "nurse";
    if (s == 2) role = "researcher";
    if (s == 3) role = "billing";
    int ward = s % config_.num_wards;
    ds.staff_role[static_cast<size_t>(s)] = role;
    ds.staff_ward[static_cast<size_t>(s)] = ward;
    Row staff{Value::Int(s), Value::String("staff_" + std::to_string(s)),
              Value::String(role), Value::Int(ward)};
    auto st = db->Insert("Staff", std::move(staff));
    if (!st.ok()) return st.status();
    ds.groups.AddMembership(HospitalDataset::StaffName(s),
                            HospitalDataset::RoleGroupName(role));
    ds.groups.AddMembership(HospitalDataset::StaffName(s),
                            HospitalDataset::WardGroupName(ward));
  }
  std::vector<int> doctors = ds.StaffWithRole("doctor");

  // ---- Patients: ward, consent, cohort, attending ----
  int chronic_count = std::max(
      1, static_cast<int>(config_.num_patients * config_.chronic_fraction));
  ds.patient_ward.resize(static_cast<size_t>(config_.num_patients));
  ds.consented.resize(static_cast<size_t>(config_.num_patients));
  ds.chronic.resize(static_cast<size_t>(config_.num_patients));
  ds.attending_of.resize(static_cast<size_t>(config_.num_patients));
  for (int p = 0; p < config_.num_patients; ++p) {
    int ward = static_cast<int>(rng.Uniform(0, config_.num_wards - 1));
    bool consent = rng.Chance(config_.consent_fraction);
    ds.patient_ward[static_cast<size_t>(p)] = ward;
    ds.consented[static_cast<size_t>(p)] = consent;
    ds.chronic[static_cast<size_t>(p)] = p < chronic_count;
    // Prefer an attending from the patient's own ward.
    std::vector<int> ward_doctors;
    for (int d : doctors) {
      if (ds.staff_ward[static_cast<size_t>(d)] == ward)
        ward_doctors.push_back(d);
    }
    const std::vector<int>& pool =
        ward_doctors.empty() ? doctors : ward_doctors;
    ds.attending_of[static_cast<size_t>(p)] = pool[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
    Row patient{Value::Int(p),
                Value::String("mrn" + std::to_string(100000 + p)),
                Value::Int(ward), Value::Int(consent ? 1 : 0)};
    auto st = db->Insert("Patients", std::move(patient));
    if (!st.ok()) return st.status();
  }

  // ---- Encounters + Diagnoses ----
  // Per-patient skew: chronic_visit_share of visits land on the chronic
  // cohort (skewed within it), the rest spread over everyone.
  std::vector<int> clinical;  // staff that conduct encounters
  for (int s = 0; s < config_.num_staff; ++s) {
    const std::string& role = ds.staff_role[static_cast<size_t>(s)];
    if (role == "doctor" || role == "nurse") clinical.push_back(s);
  }

  const char* kCodes[] = {"I10", "E11", "J45", "K21", "M54",
                          "F32", "N39", "R51", "Z00"};
  int64_t encounter_id = 0;
  int64_t diagnosis_id = 0;
  for (int e = 0; e < config_.target_encounters; ++e) {
    int patient;
    if (rng.Chance(config_.chronic_visit_share)) {
      patient = static_cast<int>(rng.Skewed(chronic_count, 0.5));
    } else {
      patient = static_cast<int>(rng.Uniform(0, config_.num_patients - 1));
    }
    int ward = ds.patient_ward[static_cast<size_t>(patient)];
    // 70% of encounters are with the patient's own ward team.
    std::vector<int> ward_clinical;
    for (int s : clinical) {
      if (ds.staff_ward[static_cast<size_t>(s)] == ward)
        ward_clinical.push_back(s);
    }
    int staff;
    if (!ward_clinical.empty() && rng.Chance(0.7)) {
      staff = ward_clinical[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(ward_clinical.size()) - 1))];
    } else {
      staff = clinical[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(clinical.size()) - 1))];
    }
    int64_t day = rng.Uniform(0, config_.num_days - 1);
    // Clinic hours: normal around 11:00, clamped to 07:00-20:00.
    double t = rng.Gaussian(11.0 * 3600, 3.0 * 3600);
    int64_t seconds = static_cast<int64_t>(t);
    if (seconds < 7 * 3600) seconds = 7 * 3600;
    if (seconds > 20 * 3600) seconds = 20 * 3600 - 1;
    Row enc{Value::Int(encounter_id), Value::Int(patient), Value::Int(staff),
            Value::Int(ward),         Value::Time(seconds),
            Value::Date(ds.first_day + day)};
    auto st = db->Insert("Encounters", std::move(enc));
    if (!st.ok()) return st.status();

    // 0-2 diagnoses per encounter; the chronic cohort codes more.
    int ndiag =
        rng.Chance(ds.chronic[static_cast<size_t>(patient)] ? 0.8 : 0.5)
            ? static_cast<int>(rng.Uniform(1, 2))
            : 0;
    for (int d = 0; d < ndiag; ++d) {
      const char* code = kCodes[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(std::size(kCodes)) - 1))];
      Row diag{Value::Int(diagnosis_id++), Value::Int(encounter_id),
               Value::Int(patient),        Value::String(code),
               Value::Int(rng.Uniform(1, 5)),
               Value::Date(ds.first_day + day)};
      auto dst = db->Insert("Diagnoses", std::move(diag));
      if (!dst.ok()) return dst.status();
    }
    ++encounter_id;
  }
  ds.num_encounters = static_cast<size_t>(encounter_id);
  ds.num_diagnoses = static_cast<size_t>(diagnosis_id);

  // ---- Indexes + statistics ----
  for (const char* col :
       {"patient_id", "staff_id", "ward", "enc_time", "enc_date"}) {
    SIEVE_RETURN_IF_ERROR(db->CreateIndex("Encounters", col));
  }
  for (const char* col : {"patient_id", "encounter_id", "diag_date"}) {
    SIEVE_RETURN_IF_ERROR(db->CreateIndex("Diagnoses", col));
  }
  SIEVE_RETURN_IF_ERROR(db->CreateIndex("Patients", "id"));
  SIEVE_RETURN_IF_ERROR(db->CreateIndex("Staff", "id"));
  SIEVE_RETURN_IF_ERROR(db->Analyze());
  return ds;
}

}  // namespace sieve
