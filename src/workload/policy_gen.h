#ifndef SIEVE_WORKLOAD_POLICY_GEN_H_
#define SIEVE_WORKLOAD_POLICY_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "policy/policy_store.h"
#include "workload/hospital.h"
#include "workload/tippers.h"

namespace sieve {

/// Profile-based policy generation over the TIPPERS dataset (Section 7.1):
/// unconcerned users subscribe to the administrator's default policies
/// (group/profile based); advanced users define ~40 fine-grained policies
/// each over device, time, date, groups and locations.
struct PolicyGenConfig {
  /// Fraction of residents that are unconcerned (paper's case study: 120 of
  /// 200, i.e. 60%).
  double unconcerned_fraction = 0.6;
  int default_policies_per_user = 2;
  int advanced_policies_per_user = 40;
  std::vector<std::string> purposes = {"Analytics", "Attendance", "Social",
                                       "Safety", "Commercial"};
  uint64_t seed = 7;
};

class TippersPolicyGenerator {
 public:
  explicit TippersPolicyGenerator(PolicyGenConfig config = {})
      : config_(config) {}

  /// Generates the full corpus (all residents) into `store`; returns the
  /// number of policies created.
  Result<size_t> Generate(const TippersDataset& ds, PolicyStore* store) const;

  /// Policies one user would define (without storing them) — used by the
  /// dynamic-regeneration and guard-quality benches.
  std::vector<Policy> PoliciesForUser(const TippersDataset& ds, int device,
                                      bool advanced, Rng* rng) const;

  const PolicyGenConfig& config() const { return config_; }

 private:
  std::string PickQuerier(const TippersDataset& ds, int device,
                          Rng* rng) const;
  Policy MakeAdvancedPolicy(const TippersDataset& ds, int device,
                            const std::string& querier,
                            const std::string& purpose, Rng* rng) const;

  PolicyGenConfig config_;
};

/// GDPR-style purpose-limited policy generation over the hospital dataset.
/// Every grant names a declared purpose (purpose limitation, Art. 5(1)(b));
/// research grants exist only for consented patients (lawfulness, Art. 6)
/// and are enumerable per patient so tests can revoke them (withdrawal of
/// consent, Art. 7(3)).
struct HospitalPolicyGenConfig {
  /// Fraction of patients who add fine-grained per-staff grants on top of
  /// the role/ward defaults.
  double fine_grained_fraction = 0.3;
  int fine_grained_policies = 6;
  uint64_t seed = 77;
};

class HospitalPolicyGenerator {
 public:
  explicit HospitalPolicyGenerator(HospitalPolicyGenConfig config = {})
      : config_(config) {}

  /// Generates the full corpus into `store`; returns the number of
  /// policies created. Per patient:
  ///  * Treatment — ward team (ward<w> group) reads the patient's
  ///    encounters during clinic hours; hospital doctors (role_doctor)
  ///    read diagnoses; the attending physician reads both outright.
  ///  * Research — consented patients only: role_researcher reads
  ///    diagnoses (date-bounded) under purpose "Research".
  ///  * Billing — role_billing reads encounters under purpose "Billing".
  ///  * Fine-grained extras for config.fine_grained_fraction of patients:
  ///    named-staff grants with time/date windows.
  Result<size_t> Generate(const HospitalDataset& ds, PolicyStore* store) const;

  /// Policies one patient would define (without storing them).
  std::vector<Policy> PoliciesForPatient(const HospitalDataset& ds,
                                         int patient, Rng* rng) const;

  const HospitalPolicyGenConfig& config() const { return config_; }

 private:
  HospitalPolicyGenConfig config_;
};

/// Ids of `patient`'s purpose="Research" grants in `store` — the
/// consent-revocable subset. Removing them (PolicyStore::RemovePolicy)
/// models the patient withdrawing research consent.
std::vector<int64_t> ResearchPolicyIds(const PolicyStore& store, int patient);

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_POLICY_GEN_H_
