#ifndef SIEVE_WORKLOAD_POLICY_GEN_H_
#define SIEVE_WORKLOAD_POLICY_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "policy/policy_store.h"
#include "workload/tippers.h"

namespace sieve {

/// Profile-based policy generation over the TIPPERS dataset (Section 7.1):
/// unconcerned users subscribe to the administrator's default policies
/// (group/profile based); advanced users define ~40 fine-grained policies
/// each over device, time, date, groups and locations.
struct PolicyGenConfig {
  /// Fraction of residents that are unconcerned (paper's case study: 120 of
  /// 200, i.e. 60%).
  double unconcerned_fraction = 0.6;
  int default_policies_per_user = 2;
  int advanced_policies_per_user = 40;
  std::vector<std::string> purposes = {"Analytics", "Attendance", "Social",
                                       "Safety", "Commercial"};
  uint64_t seed = 7;
};

class TippersPolicyGenerator {
 public:
  explicit TippersPolicyGenerator(PolicyGenConfig config = {})
      : config_(config) {}

  /// Generates the full corpus (all residents) into `store`; returns the
  /// number of policies created.
  Result<size_t> Generate(const TippersDataset& ds, PolicyStore* store) const;

  /// Policies one user would define (without storing them) — used by the
  /// dynamic-regeneration and guard-quality benches.
  std::vector<Policy> PoliciesForUser(const TippersDataset& ds, int device,
                                      bool advanced, Rng* rng) const;

  const PolicyGenConfig& config() const { return config_; }

 private:
  std::string PickQuerier(const TippersDataset& ds, int device,
                          Rng* rng) const;
  Policy MakeAdvancedPolicy(const TippersDataset& ds, int device,
                            const std::string& querier,
                            const std::string& purpose, Rng* rng) const;

  PolicyGenConfig config_;
};

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_POLICY_GEN_H_
