#include "workload/baselines.h"

#include <memory>
#include <unordered_map>

#include "common/string_util.h"
#include "expr/eval.h"
#include "parser/parser.h"

namespace sieve {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kP:
      return "BaselineP";
    case BaselineKind::kI:
      return "BaselineI";
    case BaselineKind::kU:
      return "BaselineU";
  }
  return "?";
}

namespace {

constexpr char kPolicyCheckUdf[] = "policy_check";

// Finds the owner column (by bare-name suffix) in a qualified schema.
int FindOwnerColumn(const Schema& schema) {
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const std::string& name = schema.column(i).name;
    size_t dot = name.rfind('.');
    std::string base = dot == std::string::npos ? name : name.substr(dot + 1);
    if (EqualsIgnoreCase(base, "owner")) return static_cast<int>(i);
  }
  return -1;
}

// Cache of owner -> pre-built policy expressions for one (querier, purpose,
// table) key; BaselineU's UDF rebuilds it whenever the key changes.
struct PolicyCheckCache {
  std::string key;
  std::unordered_map<std::string, std::vector<ExprPtr>> by_owner;
};

void ReplaceRefs(SelectStmt* stmt, const std::string& table,
                 const std::string& cte_name) {
  for (SelectStmt* arm = stmt; arm != nullptr; arm = arm->union_next.get()) {
    for (auto& ref : arm->from) {
      if (ref.subquery != nullptr) {
        ReplaceRefs(ref.subquery.get(), table, cte_name);
        continue;
      }
      if (EqualsIgnoreCase(ref.table_name, table)) {
        if (ref.alias.empty()) ref.alias = ref.table_name;
        ref.table_name = cte_name;
        ref.hint = IndexHint{};
      }
    }
  }
}

}  // namespace

Status Baselines::Init() {
  if (db_->udfs().Contains(kPolicyCheckUdf)) return Status::OK();
  auto cache = std::make_shared<PolicyCheckCache>();
  PolicyStore* policies = policies_;
  const GroupResolver* resolver = resolver_;
  return db_->udfs().Register(
      kPolicyCheckUdf,
      [cache, policies, resolver](const std::vector<Value>& args,
                                  UdfContext& ctx) -> Result<Value> {
        if (args.size() != 1 || args[0].type() != DataType::kString) {
          return Status::InvalidArgument(
              "policy_check() expects the protected table name");
        }
        if (ctx.metadata == nullptr) {
          return Status::ExecutionError(
              "policy_check() requires query metadata");
        }
        const std::string& table = args[0].AsString();
        std::string key =
            ctx.metadata->querier + "|" + ctx.metadata->purpose + "|" + table;
        if (cache->key != key) {
          cache->key = key;
          cache->by_owner.clear();
          for (const Policy* p :
               policies->FilterByMetadata(*ctx.metadata, table, resolver)) {
            cache->by_owner[p->owner.ToString()].push_back(p->ObjectExpr());
          }
        }
        int owner_idx = FindOwnerColumn(*ctx.schema);
        if (owner_idx < 0) {
          return Status::ExecutionError(
              "policy_check(): no owner attribute in tuple");
        }
        const Value& owner = (*ctx.row)[static_cast<size_t>(owner_idx)];
        auto it = cache->by_owner.find(owner.ToString());
        if (it == cache->by_owner.end()) return Value::Bool(false);
        Evaluator evaluator(ctx.schema, ctx.db, ctx.metadata, ctx.stats);
        for (const ExprPtr& expr : it->second) {
          if (ctx.stats != nullptr) {
            ++ctx.stats->policy_evals;
            ++ctx.stats->udf_policy_checks;
          }
          SIEVE_ASSIGN_OR_RETURN(bool match,
                                 evaluator.EvalPredicate(*expr, *ctx.row));
          if (match) return Value::Bool(true);
        }
        return Value::Bool(false);
      });
}

std::vector<std::string> Baselines::ProtectedTables(
    const SelectStmt& query) const {
  std::vector<std::string> out;
  for (const SelectStmt* arm = &query; arm != nullptr;
       arm = arm->union_next.get()) {
    for (const auto& ref : arm->from) {
      if (ref.subquery != nullptr) continue;
      bool has_policy = false;
      for (const Policy& p : policies_->policies()) {
        if (EqualsIgnoreCase(p.table_name, ref.table_name)) {
          has_policy = true;
          break;
        }
      }
      if (!has_policy) continue;
      bool seen = false;
      for (const auto& t : out) {
        if (EqualsIgnoreCase(t, ref.table_name)) seen = true;
      }
      if (!seen) out.push_back(ref.table_name);
    }
  }
  return out;
}

Result<SelectStmtPtr> Baselines::RewriteP(const SelectStmt& query,
                                          const QueryMetadata& md) {
  SelectStmtPtr out = query.Clone();
  for (const std::string& table : ProtectedTables(query)) {
    std::vector<const Policy*> relevant =
        policies_->FilterByMetadata(md, table, resolver_);
    ExprPtr policy_filter;
    if (relevant.empty()) {
      policy_filter = MakeLiteral(Value::Bool(false));
    } else {
      std::vector<ExprPtr> exprs;
      exprs.reserve(relevant.size());
      for (const Policy* p : relevant) exprs.push_back(p->ObjectExpr());
      policy_filter = MakeOr(std::move(exprs));
    }
    // <query predicate> AND (P1 OR ... OR Pn), appended to the WHERE clause.
    if (out->where == nullptr) {
      out->where = std::move(policy_filter);
    } else {
      std::vector<ExprPtr> conj;
      conj.push_back(out->where);
      conj.push_back(std::move(policy_filter));
      out->where = MakeAnd(std::move(conj));
    }
  }
  return out;
}

Result<SelectStmtPtr> Baselines::RewriteI(const SelectStmt& query,
                                          const QueryMetadata& md) {
  SelectStmtPtr out = query.Clone();
  for (const std::string& table : ProtectedTables(query)) {
    std::vector<const Policy*> relevant =
        policies_->FilterByMetadata(md, table, resolver_);
    std::string cte_name = "bi_" + ToLower(table);

    SelectStmtPtr body;
    if (relevant.empty()) {
      body = std::make_shared<SelectStmt>();
      body->select_star = true;
      TableRef ref;
      ref.table_name = table;
      body->from.push_back(ref);
      body->where = MakeLiteral(Value::Bool(false));
    } else {
      SelectStmt* tail = nullptr;
      for (const Policy* p : relevant) {
        auto arm = std::make_shared<SelectStmt>();
        arm->select_star = true;
        TableRef ref;
        ref.table_name = table;
        // Index scan per policy, forced on the owner index (every policy
        // carries the indexed oc_owner).
        ref.hint.kind = IndexHint::Kind::kForceIndex;
        ref.hint.columns.push_back("owner");
        arm->from.push_back(ref);
        arm->where = p->ObjectExpr();
        if (body == nullptr) {
          body = arm;
        } else {
          tail->union_next = arm;
          tail->union_all = false;  // UNION combines per-policy results
        }
        tail = arm.get();
      }
    }
    out->ctes.push_back({cte_name, body});
    ReplaceRefs(out.get(), table, cte_name);
  }
  return out;
}

Result<SelectStmtPtr> Baselines::RewriteU(const SelectStmt& query,
                                          const QueryMetadata& md) {
  (void)md;  // metadata flows to the UDF through the execution context
  SelectStmtPtr out = query.Clone();
  for (const std::string& table : ProtectedTables(query)) {
    std::vector<ExprPtr> args;
    args.push_back(MakeLiteral(Value::String(table)));
    ExprPtr call = MakeCompare(
        CompareOp::kEq,
        std::make_shared<UdfCallExpr>(kPolicyCheckUdf, std::move(args)),
        MakeLiteral(Value::Bool(true)));
    if (out->where == nullptr) {
      out->where = std::move(call);
    } else {
      std::vector<ExprPtr> conj;
      conj.push_back(out->where);
      conj.push_back(std::move(call));
      out->where = MakeAnd(std::move(conj));
    }
  }
  return out;
}

Result<SelectStmtPtr> Baselines::Rewrite(BaselineKind kind,
                                         const SelectStmt& query,
                                         const QueryMetadata& md) {
  switch (kind) {
    case BaselineKind::kP:
      return RewriteP(query, md);
    case BaselineKind::kI:
      return RewriteI(query, md);
    case BaselineKind::kU:
      return RewriteU(query, md);
  }
  return Status::Internal("unknown baseline kind");
}

Result<ResultSet> Baselines::Execute(BaselineKind kind, const std::string& sql,
                                     const QueryMetadata& md,
                                     double timeout_seconds) {
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr stmt, Parser::Parse(sql));
  SIEVE_ASSIGN_OR_RETURN(SelectStmtPtr rewritten, Rewrite(kind, *stmt, md));
  return db_->ExecuteStmt(*rewritten, &md, timeout_seconds);
}

}  // namespace sieve
