#include "workload/mall.h"

#include <algorithm>

namespace sieve {

namespace {
constexpr char kTable[] = "WiFi_Connectivity";
const char* kShopTypes[] = {"arcade",  "movies", "food",
                            "fashion", "tech",   "grocery"};
}  // namespace

Result<MallDataset> MallGenerator::Populate(Database* db) const {
  MallDataset ds;
  ds.config = config_;
  Rng rng(config_.seed);

  SIEVE_ASSIGN_OR_RETURN(Value start, Value::ParseDate(config_.start_date));
  ds.first_day = start.raw();

  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Shops", Schema({{"id", DataType::kInt},
                       {"name", DataType::kString},
                       {"type", DataType::kString}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Mall_Users", Schema({{"id", DataType::kInt},
                            {"device", DataType::kString},
                            {"interest", DataType::kString}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      kTable, Schema({{"id", DataType::kInt},
                      {"shop_id", DataType::kInt},
                      {"owner", DataType::kInt},
                      {"obs_time", DataType::kTime},
                      {"obs_date", DataType::kDate}})));

  ds.shop_types.resize(static_cast<size_t>(config_.num_shops));
  for (int s = 0; s < config_.num_shops; ++s) {
    ds.shop_types[static_cast<size_t>(s)] = kShopTypes[s % 6];
    Row shop{Value::Int(s), Value::String(MallDataset::ShopName(s)),
             Value::String(ds.shop_types[static_cast<size_t>(s)])};
    auto st = db->Insert("Shops", std::move(shop));
    if (!st.ok()) return st.status();
  }

  ds.regular.resize(static_cast<size_t>(config_.num_customers));
  ds.favourite_shop.resize(static_cast<size_t>(config_.num_customers));
  ds.interests.resize(static_cast<size_t>(config_.num_customers));
  for (int c = 0; c < config_.num_customers; ++c) {
    ds.regular[static_cast<size_t>(c)] = rng.Chance(0.45);
    ds.favourite_shop[static_cast<size_t>(c)] =
        static_cast<int>(rng.Skewed(config_.num_shops, 0.7));
    ds.interests[static_cast<size_t>(c)] =
        rng.Chance(0.5) ? kShopTypes[rng.Uniform(0, 5)] : "";
    Row user{Value::Int(c), Value::String("cust_" + std::to_string(c)),
             Value::String(ds.interests[static_cast<size_t>(c)])};
    auto st = db->Insert("Mall_Users", std::move(user));
    if (!st.ok()) return st.status();
  }

  // Weekly sale days (e.g. Saturdays).
  for (int64_t day = 5; day < config_.num_days; day += 7) {
    ds.sale_days.push_back(day);
  }

  int64_t event_id = 0;
  for (int e = 0; e < config_.target_events; ++e) {
    int c = static_cast<int>(
        rng.Skewed(config_.num_customers, ds.regular.empty() ? 0.5 : 0.4));
    bool is_regular = ds.regular[static_cast<size_t>(c)];
    int shop = is_regular && rng.Chance(0.55)
                   ? ds.favourite_shop[static_cast<size_t>(c)]
                   : static_cast<int>(rng.Skewed(config_.num_shops, 0.5));
    int64_t day = rng.Uniform(0, config_.num_days - 1);
    if (!is_regular && !ds.sale_days.empty() && rng.Chance(0.5)) {
      day = ds.sale_days[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(ds.sale_days.size()) - 1))];
    }
    // Mall hours 10:00-21:00, peak around 17:00.
    double t = rng.Gaussian(17.0 * 3600, 2.5 * 3600);
    int64_t seconds = static_cast<int64_t>(t);
    if (seconds < 10 * 3600) seconds = 10 * 3600;
    if (seconds > 21 * 3600) seconds = 21 * 3600 - 1;
    Row event{Value::Int(event_id++), Value::Int(shop), Value::Int(c),
              Value::Time(seconds), Value::Date(ds.first_day + day)};
    auto st = db->Insert(kTable, std::move(event));
    if (!st.ok()) return st.status();
  }
  ds.num_events = static_cast<size_t>(event_id);

  for (const char* col : {"owner", "shop_id", "obs_time", "obs_date"}) {
    SIEVE_RETURN_IF_ERROR(db->CreateIndex(kTable, col));
  }
  SIEVE_RETURN_IF_ERROR(db->Analyze());
  return ds;
}

Result<size_t> MallPolicyGenerator::Generate(const MallDataset& ds,
                                             PolicyStore* store) const {
  Rng rng(seed_);
  size_t count = 0;
  const int num_shops = ds.config.num_shops;

  auto add = [&](Policy p) -> Status {
    auto added = store->AddPolicy(std::move(p));
    if (!added.ok()) return added.status();
    ++count;
    return Status::OK();
  };

  for (int c = 0; c < ds.config.num_customers; ++c) {
    if (ds.regular[static_cast<size_t>(c)]) {
      // Regular: most-visited shops may see the customer during open hours.
      int grants = static_cast<int>(rng.Uniform(2, 5));
      for (int g = 0; g < grants; ++g) {
        int shop = g == 0 ? ds.favourite_shop[static_cast<size_t>(c)]
                          : static_cast<int>(rng.Skewed(num_shops, 0.7));
        Policy p;
        p.table_name = "WiFi_Connectivity";
        p.owner = Value::Int(c);
        p.querier = MallDataset::ShopName(shop);
        p.purpose = "Marketing";
        p.object_conditions.push_back(
            ObjectCondition::Eq("owner", Value::Int(c)));
        p.object_conditions.push_back(
            ObjectCondition::Eq("shop_id", Value::Int(shop)));
        p.object_conditions.push_back(ObjectCondition::Range(
            "obs_time", Value::Time(10 * 3600), Value::Time(21 * 3600)));
        SIEVE_RETURN_IF_ERROR(add(std::move(p)));
      }
    } else {
      // Irregular: specific shops, only around sale days.
      int grants = static_cast<int>(rng.Uniform(1, 3));
      for (int g = 0; g < grants && !ds.sale_days.empty(); ++g) {
        int shop = static_cast<int>(rng.Skewed(num_shops, 0.5));
        int64_t day = ds.sale_days[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(ds.sale_days.size()) - 1))];
        Policy p;
        p.table_name = "WiFi_Connectivity";
        p.owner = Value::Int(c);
        p.querier = MallDataset::ShopName(shop);
        p.purpose = "Marketing";
        p.object_conditions.push_back(
            ObjectCondition::Eq("owner", Value::Int(c)));
        p.object_conditions.push_back(ObjectCondition::Range(
            "obs_date", Value::Date(ds.first_day + day - 1),
            Value::Date(ds.first_day + day + 1)));
        SIEVE_RETURN_IF_ERROR(add(std::move(p)));
      }
    }
    // Interest-driven lightning-sale grants to all shops of the category.
    const std::string& interest = ds.interests[static_cast<size_t>(c)];
    if (!interest.empty() && rng.Chance(0.6)) {
      for (int s = 0; s < num_shops; ++s) {
        if (ds.shop_types[static_cast<size_t>(s)] != interest) continue;
        if (!rng.Chance(0.5)) continue;
        int64_t start_h = rng.Uniform(11, 18);
        Policy p;
        p.table_name = "WiFi_Connectivity";
        p.owner = Value::Int(c);
        p.querier = MallDataset::ShopName(s);
        p.purpose = "Marketing";
        p.object_conditions.push_back(
            ObjectCondition::Eq("owner", Value::Int(c)));
        p.object_conditions.push_back(ObjectCondition::Range(
            "obs_time", Value::Time(start_h * 3600),
            Value::Time((start_h + 2) * 3600)));
        SIEVE_RETURN_IF_ERROR(add(std::move(p)));
      }
    }
  }
  return count;
}

}  // namespace sieve
