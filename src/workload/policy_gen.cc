#include "workload/policy_gen.h"

#include "common/string_util.h"

namespace sieve {

namespace {
constexpr char kTable[] = "WiFi_Dataset";
constexpr char kEncounters[] = "Encounters";
constexpr char kDiagnoses[] = "Diagnoses";
}  // namespace

std::string TippersPolicyGenerator::PickQuerier(const TippersDataset& ds,
                                                int device, Rng* rng) const {
  // Skewed toward the people who actually pose queries on campus (faculty
  // and staff), with group-level grants mixed in.
  double roll = rng->NextDouble();
  if (roll < 0.35) {
    // Skewed: the few teaching faculty accumulate the bulk of the grants
    // (everyone's advisor / instructor), like the paper's per-querier
    // policy counts in the hundreds.
    std::vector<int> faculty = ds.DevicesWithProfile("faculty");
    if (!faculty.empty()) {
      return TippersDataset::UserName(faculty[static_cast<size_t>(
          rng->Skewed(static_cast<int64_t>(faculty.size()), 1.5))]);
    }
  } else if (roll < 0.55) {
    std::vector<int> staff = ds.DevicesWithProfile("staff");
    if (!staff.empty()) {
      return TippersDataset::UserName(staff[static_cast<size_t>(
          rng->Skewed(static_cast<int64_t>(staff.size()), 1.5))]);
    }
  } else if (roll < 0.75) {
    int g = ds.group_of[static_cast<size_t>(device)];
    if (g >= 0) return TippersDataset::GroupName(g);
  }
  std::vector<int> residents = ds.ResidentDevices();
  return TippersDataset::UserName(residents[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(residents.size()) - 1))]);
}

Policy TippersPolicyGenerator::MakeAdvancedPolicy(const TippersDataset& ds,
                                                  int device,
                                                  const std::string& querier,
                                                  const std::string& purpose,
                                                  Rng* rng) const {
  Policy p;
  p.table_name = kTable;
  p.owner = Value::Int(device);
  p.action = PolicyAction::kAllow;
  p.purpose = purpose;
  p.querier = querier;

  // Object conditions: oc_owner always; time/date/location optional.
  p.object_conditions.push_back(
      ObjectCondition::Eq("owner", Value::Int(device)));
  if (rng->Chance(0.7)) {
    int64_t start_h = rng->Uniform(7, 17);
    int64_t dur_h = rng->Uniform(1, 6);
    int64_t end_h = std::min<int64_t>(start_h + dur_h, 23);
    p.object_conditions.push_back(ObjectCondition::Range(
        "ts_time", Value::Time(start_h * 3600), Value::Time(end_h * 3600)));
  }
  if (rng->Chance(0.5)) {
    int64_t start_d = rng->Uniform(0, ds.config.num_days - 2);
    int64_t span = rng->Uniform(1, 30);
    int64_t end_d =
        std::min<int64_t>(start_d + span, ds.config.num_days - 1);
    p.object_conditions.push_back(ObjectCondition::Range(
        "ts_date", Value::Date(ds.first_day + start_d),
        Value::Date(ds.first_day + end_d)));
  }
  if (rng->Chance(0.5)) {
    int ap = rng->Chance(0.6)
                 ? ds.home_ap[static_cast<size_t>(device)]
                 : static_cast<int>(rng->Uniform(0, ds.config.num_aps - 1));
    p.object_conditions.push_back(
        ObjectCondition::Eq("wifiAP", Value::Int(ap)));
  }
  return p;
}

std::vector<Policy> TippersPolicyGenerator::PoliciesForUser(
    const TippersDataset& ds, int device, bool advanced, Rng* rng) const {
  std::vector<Policy> out;
  const std::string& profile = ds.profiles[static_cast<size_t>(device)];
  int group = ds.group_of[static_cast<size_t>(device)];

  if (!advanced) {
    // Default policy 1: data during working hours visible to the user's
    // affinity group.
    if (group >= 0) {
      Policy p1;
      p1.table_name = kTable;
      p1.owner = Value::Int(device);
      p1.querier = TippersDataset::GroupName(group);
      p1.purpose = "any";
      p1.object_conditions.push_back(
          ObjectCondition::Eq("owner", Value::Int(device)));
      p1.object_conditions.push_back(ObjectCondition::Range(
          "ts_time", Value::Time(9 * 3600), Value::Time(18 * 3600)));
      out.push_back(std::move(p1));
    }
    // Default policy 2: any-time data visible to same-profile peers.
    Policy p2;
    p2.table_name = kTable;
    p2.owner = Value::Int(device);
    p2.querier = TippersDataset::ProfileGroupName(profile);
    p2.purpose = "any";
    p2.object_conditions.push_back(
        ObjectCondition::Eq("owner", Value::Int(device)));
    out.push_back(std::move(p2));
    while (static_cast<int>(out.size()) < config_.default_policies_per_user) {
      out.push_back(out.back());
    }
    return out;
  }

  // Advanced users concentrate their rules on a handful of grantees (their
  // advisor, a couple of colleagues, their group): ~6 policies per grantee.
  out.reserve(static_cast<size_t>(config_.advanced_policies_per_user));
  int remaining = config_.advanced_policies_per_user;
  while (remaining > 0) {
    std::string querier = PickQuerier(ds, device, rng);
    // One grant purpose per burst: "these rules are for my advisor's
    // analytics", not six unrelated purposes.
    const std::string& purpose = config_.purposes[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(config_.purposes.size()) - 1))];
    int burst = static_cast<int>(rng->Uniform(4, 8));
    if (burst > remaining) burst = remaining;
    for (int i = 0; i < burst; ++i) {
      out.push_back(MakeAdvancedPolicy(ds, device, querier, purpose, rng));
    }
    remaining -= burst;
  }
  return out;
}

Result<size_t> TippersPolicyGenerator::Generate(const TippersDataset& ds,
                                                PolicyStore* store) const {
  Rng rng(config_.seed);
  size_t count = 0;
  for (int device : ds.ResidentDevices()) {
    bool advanced = !rng.Chance(config_.unconcerned_fraction);
    for (Policy& p : PoliciesForUser(ds, device, advanced, &rng)) {
      auto added = store->AddPolicy(std::move(p));
      if (!added.ok()) return added.status();
      ++count;
    }
  }
  return count;
}

namespace {

/// Grant skeleton: table + owner condition, the invariant part of every
/// hospital policy.
Policy HospitalGrant(const char* table, int patient,
                     const std::string& querier, const std::string& purpose) {
  Policy p;
  p.table_name = table;
  p.owner = Value::Int(patient);
  p.querier = querier;
  p.purpose = purpose;
  p.action = PolicyAction::kAllow;
  p.object_conditions.push_back(
      ObjectCondition::Eq("patient_id", Value::Int(patient)));
  return p;
}

}  // namespace

std::vector<Policy> HospitalPolicyGenerator::PoliciesForPatient(
    const HospitalDataset& ds, int patient, Rng* rng) const {
  std::vector<Policy> out;
  const int ward = ds.patient_ward[static_cast<size_t>(patient)];
  const int num_days = ds.config.num_days;

  // Treatment: the ward team reads the patient's encounters during clinic
  // hours; hospital doctors read diagnoses; the attending physician reads
  // both without object restrictions beyond ownership.
  {
    Policy p = HospitalGrant(kEncounters, patient,
                             HospitalDataset::WardGroupName(ward), "Treatment");
    p.object_conditions.push_back(ObjectCondition::Range(
        "enc_time", Value::Time(7 * 3600), Value::Time(20 * 3600)));
    out.push_back(std::move(p));
  }
  out.push_back(HospitalGrant(kDiagnoses, patient,
                              HospitalDataset::RoleGroupName("doctor"),
                              "Treatment"));
  {
    const std::string attending =
        HospitalDataset::StaffName(ds.attending_of[static_cast<size_t>(patient)]);
    out.push_back(HospitalGrant(kEncounters, patient, attending, "Treatment"));
    out.push_back(HospitalGrant(kDiagnoses, patient, attending, "Treatment"));
  }

  // Research: consented patients only — the revocable subset (enumerate
  // with ResearchPolicyIds, revoke with PolicyStore::RemovePolicy).
  if (ds.consented[static_cast<size_t>(patient)]) {
    Policy p = HospitalGrant(kDiagnoses, patient,
                             HospitalDataset::RoleGroupName("researcher"),
                             "Research");
    // Date-bounded: research covers a study window, not the full record.
    int64_t start_d = rng->Uniform(0, std::max(0, num_days - 31));
    int64_t end_d = std::min<int64_t>(start_d + 60, num_days - 1);
    p.object_conditions.push_back(ObjectCondition::Range(
        "diag_date", Value::Date(ds.first_day + start_d),
        Value::Date(ds.first_day + end_d)));
    out.push_back(std::move(p));
  }

  // Billing: encounter-level access for the billing office.
  out.push_back(HospitalGrant(kEncounters, patient,
                              HospitalDataset::RoleGroupName("billing"),
                              "Billing"));

  // Fine-grained extras: named-staff grants with time/date windows.
  if (rng->Chance(config_.fine_grained_fraction)) {
    for (int i = 0; i < config_.fine_grained_policies; ++i) {
      int staff = static_cast<int>(
          rng->Uniform(0, static_cast<int64_t>(ds.staff_role.size()) - 1));
      const char* table = rng->Chance(0.5) ? kEncounters : kDiagnoses;
      const std::string purpose = rng->Chance(0.7) ? "Treatment" : "Billing";
      Policy p = HospitalGrant(table, patient,
                               HospitalDataset::StaffName(staff), purpose);
      if (table == kEncounters && rng->Chance(0.6)) {
        int64_t start_h = rng->Uniform(7, 16);
        int64_t end_h = std::min<int64_t>(start_h + rng->Uniform(1, 6), 20);
        p.object_conditions.push_back(ObjectCondition::Range(
            "enc_time", Value::Time(start_h * 3600), Value::Time(end_h * 3600)));
      }
      if (rng->Chance(0.5)) {
        const char* date_col =
            table == kEncounters ? "enc_date" : "diag_date";
        int64_t start_d = rng->Uniform(0, std::max(0, num_days - 2));
        int64_t end_d =
            std::min<int64_t>(start_d + rng->Uniform(1, 30), num_days - 1);
        p.object_conditions.push_back(ObjectCondition::Range(
            date_col, Value::Date(ds.first_day + start_d),
            Value::Date(ds.first_day + end_d)));
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

Result<size_t> HospitalPolicyGenerator::Generate(const HospitalDataset& ds,
                                                 PolicyStore* store) const {
  Rng rng(config_.seed);
  size_t count = 0;
  for (int p = 0; p < ds.config.num_patients; ++p) {
    for (Policy& policy : PoliciesForPatient(ds, p, &rng)) {
      auto added = store->AddPolicy(std::move(policy));
      if (!added.ok()) return added.status();
      ++count;
    }
  }
  return count;
}

std::vector<int64_t> ResearchPolicyIds(const PolicyStore& store, int patient) {
  std::vector<int64_t> out;
  for (const Policy& p : store.policies()) {
    if (p.owner.raw() == patient && EqualsIgnoreCase(p.purpose, "Research")) {
      out.push_back(p.id);
    }
  }
  return out;
}

}  // namespace sieve
