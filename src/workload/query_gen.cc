#include "workload/query_gen.h"

#include "common/string_util.h"

namespace sieve {

const char* QuerySelectivityName(QuerySelectivity s) {
  switch (s) {
    case QuerySelectivity::kLow:
      return "low";
    case QuerySelectivity::kMid:
      return "mid";
    case QuerySelectivity::kHigh:
      return "high";
  }
  return "?";
}

TippersQueryGenerator::Window TippersQueryGenerator::MakeWindow(
    QuerySelectivity sel) {
  Window w;
  const int num_days = ds_->config.num_days;
  switch (sel) {
    case QuerySelectivity::kLow: {
      int64_t start_h = rng_.Uniform(9, 16);
      w.t1 = start_h * 3600;
      w.t2 = (start_h + 1) * 3600;
      w.d1 = rng_.Uniform(0, num_days - 4);
      w.d2 = w.d1 + 3;
      break;
    }
    case QuerySelectivity::kMid: {
      int64_t start_h = rng_.Uniform(8, 14);
      w.t1 = start_h * 3600;
      w.t2 = (start_h + 4) * 3600;
      w.d1 = rng_.Uniform(0, num_days - 15);
      w.d2 = w.d1 + 14;
      break;
    }
    case QuerySelectivity::kHigh: {
      w.t1 = 7 * 3600;
      w.t2 = 21 * 3600;
      w.d1 = 0;
      w.d2 = num_days - 1;
      break;
    }
  }
  return w;
}

namespace {

std::string DateLiteral(int64_t days) {
  return Value::Date(days).ToSqlLiteral();
}

std::string TimeLiteral(int64_t seconds) {
  return Value::Time(seconds).ToSqlLiteral();
}

}  // namespace

std::string TippersQueryGenerator::Q1(QuerySelectivity sel) {
  Window w = MakeWindow(sel);
  int num_aps = sel == QuerySelectivity::kLow    ? 2
                : sel == QuerySelectivity::kMid  ? 8
                                                 : 24;
  std::vector<std::string> aps;
  for (int64_t ap : rng_.Sample(ds_->config.num_aps, num_aps)) {
    aps.push_back(std::to_string(ap));
  }
  return StrFormat(
      "SELECT * FROM WiFi_Dataset AS W WHERE W.wifiAP IN (%s) AND "
      "W.ts_time BETWEEN %s AND %s AND W.ts_date BETWEEN %s AND %s",
      Join(aps, ", ").c_str(), TimeLiteral(w.t1).c_str(),
      TimeLiteral(w.t2).c_str(), DateLiteral(ds_->first_day + w.d1).c_str(),
      DateLiteral(ds_->first_day + w.d2).c_str());
}

std::string TippersQueryGenerator::Q2(QuerySelectivity sel) {
  Window w = MakeWindow(sel);
  int num_devices = sel == QuerySelectivity::kLow    ? 5
                    : sel == QuerySelectivity::kMid  ? 40
                                                     : 300;
  std::vector<std::string> devices;
  for (int64_t d : rng_.Sample(ds_->config.num_devices, num_devices)) {
    devices.push_back(std::to_string(d));
  }
  return StrFormat(
      "SELECT * FROM WiFi_Dataset AS W WHERE W.owner IN (%s) AND "
      "W.ts_time BETWEEN %s AND %s AND W.ts_date BETWEEN %s AND %s",
      Join(devices, ", ").c_str(), TimeLiteral(w.t1).c_str(),
      TimeLiteral(w.t2).c_str(), DateLiteral(ds_->first_day + w.d1).c_str(),
      DateLiteral(ds_->first_day + w.d2).c_str());
}

std::string TippersQueryGenerator::Q3(QuerySelectivity sel, int group_id) {
  Window w = MakeWindow(sel);
  return StrFormat(
      "SELECT * FROM WiFi_Dataset AS W, User_Group_Membership AS UG "
      "WHERE UG.user_group_id = %d AND UG.user_id = W.owner AND "
      "W.ts_time BETWEEN %s AND %s AND W.ts_date BETWEEN %s AND %s",
      group_id, TimeLiteral(w.t1).c_str(), TimeLiteral(w.t2).c_str(),
      DateLiteral(ds_->first_day + w.d1).c_str(),
      DateLiteral(ds_->first_day + w.d2).c_str());
}

std::string TippersQueryGenerator::SelectAll() {
  return "SELECT * FROM WiFi_Dataset AS W";
}

HospitalQueryGenerator::Window HospitalQueryGenerator::MakeWindow(
    QuerySelectivity sel) {
  Window w;
  const int num_days = ds_->config.num_days;
  switch (sel) {
    case QuerySelectivity::kLow: {
      int64_t start_h = rng_.Uniform(8, 16);
      w.t1 = start_h * 3600;
      w.t2 = (start_h + 1) * 3600;
      w.d1 = rng_.Uniform(0, std::max(0, num_days - 4));
      w.d2 = std::min<int64_t>(w.d1 + 3, num_days - 1);
      break;
    }
    case QuerySelectivity::kMid: {
      int64_t start_h = rng_.Uniform(7, 13);
      w.t1 = start_h * 3600;
      w.t2 = (start_h + 5) * 3600;
      w.d1 = rng_.Uniform(0, std::max(0, num_days - 15));
      w.d2 = std::min<int64_t>(w.d1 + 14, num_days - 1);
      break;
    }
    case QuerySelectivity::kHigh: {
      w.t1 = 7 * 3600;
      w.t2 = 20 * 3600;
      w.d1 = 0;
      w.d2 = num_days - 1;
      break;
    }
  }
  return w;
}

std::string HospitalQueryGenerator::HQ1(QuerySelectivity sel) {
  Window w = MakeWindow(sel);
  int num_wards = sel == QuerySelectivity::kLow    ? 1
                  : sel == QuerySelectivity::kMid  ? 3
                                                   : ds_->config.num_wards;
  std::vector<std::string> wards;
  for (int64_t ward : rng_.Sample(ds_->config.num_wards, num_wards)) {
    wards.push_back(std::to_string(ward));
  }
  return StrFormat(
      "SELECT * FROM Encounters AS E WHERE E.ward IN (%s) AND "
      "E.enc_time BETWEEN %s AND %s AND E.enc_date BETWEEN %s AND %s",
      Join(wards, ", ").c_str(), TimeLiteral(w.t1).c_str(),
      TimeLiteral(w.t2).c_str(), DateLiteral(ds_->first_day + w.d1).c_str(),
      DateLiteral(ds_->first_day + w.d2).c_str());
}

std::string HospitalQueryGenerator::HQ2(QuerySelectivity sel) {
  Window w = MakeWindow(sel);
  int num_patients = sel == QuerySelectivity::kLow    ? 3
                     : sel == QuerySelectivity::kMid  ? 20
                                                      : 120;
  std::vector<std::string> patients;
  for (int64_t p : rng_.Sample(ds_->config.num_patients,
                               std::min(num_patients,
                                        ds_->config.num_patients))) {
    patients.push_back(std::to_string(p));
  }
  return StrFormat(
      "SELECT * FROM Encounters AS E WHERE E.patient_id IN (%s) AND "
      "E.enc_date BETWEEN %s AND %s",
      Join(patients, ", ").c_str(),
      DateLiteral(ds_->first_day + w.d1).c_str(),
      DateLiteral(ds_->first_day + w.d2).c_str());
}

std::string HospitalQueryGenerator::HQ3(QuerySelectivity sel) {
  Window w = MakeWindow(sel);
  int min_severity = sel == QuerySelectivity::kLow    ? 5
                     : sel == QuerySelectivity::kMid  ? 4
                                                      : 2;
  return StrFormat(
      "SELECT * FROM Diagnoses AS D, Encounters AS E "
      "WHERE D.encounter_id = E.id AND D.severity >= %d AND "
      "D.diag_date BETWEEN %s AND %s",
      min_severity, DateLiteral(ds_->first_day + w.d1).c_str(),
      DateLiteral(ds_->first_day + w.d2).c_str());
}

std::string HospitalQueryGenerator::SelectAllEncounters() {
  return "SELECT * FROM Encounters AS E";
}

std::string HospitalQueryGenerator::SelectAllDiagnoses() {
  return "SELECT * FROM Diagnoses AS D";
}

}  // namespace sieve
