#include "workload/tippers.h"

#include <algorithm>

#include "common/string_util.h"

namespace sieve {

std::vector<int> TippersDataset::DevicesWithProfile(
    const std::string& profile) const {
  std::vector<int> out;
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i] == profile) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> TippersDataset::ResidentDevices() const {
  std::vector<int> out;
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i] != "visitor") out.push_back(static_cast<int>(i));
  }
  return out;
}

Result<TippersDataset> TippersGenerator::Populate(Database* db) const {
  TippersDataset ds;
  ds.config = config_;
  Rng rng(config_.seed);

  SIEVE_ASSIGN_OR_RETURN(Value start, Value::ParseDate(config_.start_date));
  ds.first_day = start.raw();

  // ---- Schema (Table 2) ----
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Users", Schema({{"id", DataType::kInt},
                       {"device", DataType::kString},
                       {"office", DataType::kInt}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "User_Groups", Schema({{"id", DataType::kInt},
                             {"name", DataType::kString},
                             {"owner", DataType::kString}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "User_Group_Membership", Schema({{"user_group_id", DataType::kInt},
                                       {"user_id", DataType::kInt}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "Location", Schema({{"id", DataType::kInt},
                          {"name", DataType::kString},
                          {"type", DataType::kString}})));
  SIEVE_RETURN_IF_ERROR(db->CreateTable(
      "WiFi_Dataset", Schema({{"id", DataType::kInt},
                              {"wifiAP", DataType::kInt},
                              {"owner", DataType::kInt},
                              {"ts_time", DataType::kTime},
                              {"ts_date", DataType::kDate}})));

  // ---- Devices, profiles, groups ----
  // Paper's classified population: 31,796 visitors, 1,029 staff, 388
  // faculty, 1,795 undergrad, 1,428 grad out of 36,436.
  const struct {
    const char* name;
    double fraction;
  } kProfiles[] = {{"visitor", 0.8727},
                   {"staff", 0.0282},
                   {"faculty", 0.0106},
                   {"undergrad", 0.0493},
                   {"grad", 0.0392}};

  ds.profiles.resize(static_cast<size_t>(config_.num_devices));
  ds.home_ap.resize(static_cast<size_t>(config_.num_devices));
  ds.group_of.assign(static_cast<size_t>(config_.num_devices), -1);

  for (int d = 0; d < config_.num_devices; ++d) {
    double roll = rng.NextDouble();
    double acc = 0.0;
    std::string profile = "grad";
    for (const auto& p : kProfiles) {
      acc += p.fraction;
      if (roll < acc) {
        profile = p.name;
        break;
      }
    }
    ds.profiles[static_cast<size_t>(d)] = profile;
    ds.home_ap[static_cast<size_t>(d)] =
        static_cast<int>(rng.Skewed(config_.num_aps, 0.6));

    Row user{Value::Int(d), Value::String("device_" + std::to_string(d)),
             Value::Int(ds.home_ap[static_cast<size_t>(d)])};
    auto st = db->Insert("Users", std::move(user));
    if (!st.ok()) return st.status();
  }

  // Affinity groups for residents: group follows the home AP.
  for (int g = 0; g < config_.num_groups; ++g) {
    Row group{Value::Int(g), Value::String(TippersDataset::GroupName(g)),
              Value::String("admin")};
    auto st = db->Insert("User_Groups", std::move(group));
    if (!st.ok()) return st.status();
  }
  for (int d = 0; d < config_.num_devices; ++d) {
    if (ds.profiles[static_cast<size_t>(d)] == "visitor") continue;
    int g = ds.home_ap[static_cast<size_t>(d)] % config_.num_groups;
    ds.group_of[static_cast<size_t>(d)] = g;
    Row membership{Value::Int(g), Value::Int(d)};
    auto st = db->Insert("User_Group_Membership", std::move(membership));
    if (!st.ok()) return st.status();
    ds.groups.AddMembership(TippersDataset::UserName(d),
                            TippersDataset::GroupName(g));
    ds.groups.AddMembership(
        TippersDataset::UserName(d),
        TippersDataset::ProfileGroupName(ds.profiles[static_cast<size_t>(d)]));
  }

  // APs as locations.
  for (int ap = 0; ap < config_.num_aps; ++ap) {
    Row loc{Value::Int(ap), Value::String("AP_" + std::to_string(ap)),
            Value::String(ap % 4 == 0 ? "classroom"
                          : ap % 4 == 1 ? "lab"
                          : ap % 4 == 2 ? "office"
                                        : "common")};
    auto st = db->Insert("Location", std::move(loc));
    if (!st.ok()) return st.status();
  }

  // ---- Connectivity events ----
  // Visitors contribute a small trickle (paper: <5% of days); residents
  // produce diurnal weekday traffic anchored at their home AP.
  std::vector<int> residents = ds.ResidentDevices();
  std::vector<int> visitors = ds.DevicesWithProfile("visitor");
  int64_t event_id = 0;
  size_t visitor_events = static_cast<size_t>(config_.target_events / 20);
  size_t resident_events =
      static_cast<size_t>(config_.target_events) - visitor_events;

  auto insert_event = [&](int device, int ap, int64_t seconds,
                          int64_t day) -> Status {
    Row event{Value::Int(event_id++), Value::Int(ap), Value::Int(device),
              Value::Time(seconds), Value::Date(ds.first_day + day)};
    auto st = db->Insert("WiFi_Dataset", std::move(event));
    return st.ok() ? Status::OK() : st.status();
  };

  for (size_t e = 0; e < visitor_events && !visitors.empty(); ++e) {
    int device = visitors[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(visitors.size()) - 1))];
    int ap = static_cast<int>(rng.Uniform(0, config_.num_aps - 1));
    int64_t day = rng.Uniform(0, config_.num_days - 1);
    int64_t seconds = rng.Uniform(7 * 3600, 21 * 3600);
    SIEVE_RETURN_IF_ERROR(insert_event(device, ap, seconds, day));
  }

  for (size_t e = 0; e < resident_events && !residents.empty(); ++e) {
    int device = residents[static_cast<size_t>(
        rng.Skewed(static_cast<int64_t>(residents.size()), 0.3))];
    // Weekday bias: 85% of events on Mon-Fri.
    int64_t day;
    do {
      day = rng.Uniform(0, config_.num_days - 1);
    } while ((ds.first_day + day) % 7 >= 5 && rng.NextDouble() < 0.85);
    // Diurnal: normal around 13:00, clamped to 06:00-22:00.
    double t = rng.Gaussian(13.0 * 3600, 3.0 * 3600);
    int64_t seconds = static_cast<int64_t>(t);
    if (seconds < 6 * 3600) seconds = 6 * 3600;
    if (seconds > 22 * 3600) seconds = 22 * 3600 - 1;
    // AP affinity: 60% home AP, else skewed across the rest.
    int ap = ds.home_ap[static_cast<size_t>(device)];
    if (!rng.Chance(0.6)) {
      ap = static_cast<int>(rng.Skewed(config_.num_aps, 0.5));
    }
    SIEVE_RETURN_IF_ERROR(insert_event(device, ap, seconds, day));
  }
  ds.num_events = static_cast<size_t>(event_id);

  // ---- Indexes + statistics ----
  for (const char* col : {"owner", "wifiAP", "ts_time", "ts_date"}) {
    SIEVE_RETURN_IF_ERROR(db->CreateIndex("WiFi_Dataset", col));
  }
  SIEVE_RETURN_IF_ERROR(db->CreateIndex("User_Group_Membership", "user_group_id"));
  SIEVE_RETURN_IF_ERROR(db->CreateIndex("User_Group_Membership", "user_id"));
  SIEVE_RETURN_IF_ERROR(db->CreateIndex("Users", "id"));
  SIEVE_RETURN_IF_ERROR(db->Analyze());
  return ds;
}

}  // namespace sieve
