#ifndef SIEVE_WORKLOAD_TIPPERS_H_
#define SIEVE_WORKLOAD_TIPPERS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "policy/policy.h"

namespace sieve {

/// Scale knobs for the synthetic TIPPERS-like campus WiFi dataset. The
/// defaults are a laptop-scale rendition of the paper's corpus (3.9M events,
/// 36K devices, 64 APs over ~3 months); the proportions — profile mix,
/// events per device, group sizes — follow Section 7.1.
struct TippersConfig {
  int num_devices = 3000;
  int num_aps = 64;
  int num_days = 90;
  int target_events = 300000;
  int num_groups = 28;          // paper: 56 groups / 36K devices
  std::string start_date = "2019-09-25";
  uint64_t seed = 42;
};

/// Metadata of a generated dataset: per-device profiles, group assignments
/// and the group resolver used for querier-condition matching.
struct TippersDataset {
  TippersConfig config;
  int64_t first_day = 0;  ///< Date value (days since epoch) of day 0
  /// Profile per device: "visitor", "staff", "faculty", "undergrad", "grad".
  std::vector<std::string> profiles;
  std::vector<int> home_ap;   ///< affinity AP per device
  std::vector<int> group_of;  ///< affinity group per device (-1 for visitors)
  MapGroupResolver groups;
  size_t num_events = 0;

  static std::string UserName(int device) {
    return "u" + std::to_string(device);
  }
  static std::string GroupName(int group) {
    return "grp" + std::to_string(group);
  }
  static std::string ProfileGroupName(const std::string& profile) {
    return "profile_" + profile;
  }

  std::vector<int> DevicesWithProfile(const std::string& profile) const;
  /// Devices that are not visitors (the policy-defining population).
  std::vector<int> ResidentDevices() const;
};

/// Generates the TIPPERS schema (Table 2) and synthetic connectivity events
/// with diurnal, weekday-skewed patterns and AP affinity, then builds the
/// experiment indexes (owner, wifiAP, ts_time, ts_date) and statistics.
class TippersGenerator {
 public:
  explicit TippersGenerator(TippersConfig config = {}) : config_(config) {}

  Result<TippersDataset> Populate(Database* db) const;

 private:
  TippersConfig config_;
};

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_TIPPERS_H_
