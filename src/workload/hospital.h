#ifndef SIEVE_WORKLOAD_HOSPITAL_H_
#define SIEVE_WORKLOAD_HOSPITAL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "policy/policy.h"

namespace sieve {

/// Scale knobs for the synthetic hospital-records dataset: electronic
/// health records under GDPR-style purpose limitation. Patients own their
/// encounter/diagnosis rows; staff (doctors, nurses, researchers, billing
/// clerks) query them under declared purposes, and policies grant access
/// per role, ward and purpose. Encounter volume is skewed per patient —
/// a small chronic cohort accounts for the bulk of the visits — mirroring
/// real EHR access distributions.
struct HospitalConfig {
  int num_patients = 400;
  int num_staff = 60;
  int num_wards = 8;
  int num_days = 120;
  int target_encounters = 20000;
  /// Fraction of patients in the chronic cohort (frequent encounters).
  double chronic_fraction = 0.2;
  /// Probability an encounter belongs to a chronic patient.
  double chronic_visit_share = 0.6;
  /// Fraction of patients who consented to research use of their data.
  double consent_fraction = 0.7;
  std::string start_date = "2021-03-01";
  uint64_t seed = 2021;
};

/// Metadata of a generated hospital dataset: per-patient ward/consent/
/// cohort, per-staff role/ward, and the group resolver mapping staff to
/// their role_<role> and ward<w> groups (querier-condition matching).
struct HospitalDataset {
  HospitalConfig config;
  int64_t first_day = 0;  ///< Date value (days since epoch) of day 0
  std::vector<int> patient_ward;         ///< per patient
  std::vector<bool> consented;           ///< research consent per patient
  std::vector<bool> chronic;             ///< chronic-cohort membership
  std::vector<std::string> staff_role;   ///< "doctor", "nurse", "researcher",
                                         ///< "billing", "admin"
  std::vector<int> staff_ward;           ///< per staff
  std::vector<int> attending_of;         ///< attending doctor per patient
  MapGroupResolver groups;
  size_t num_encounters = 0;
  size_t num_diagnoses = 0;

  static std::string StaffName(int s) { return "s" + std::to_string(s); }
  static std::string RoleGroupName(const std::string& role) {
    return "role_" + role;
  }
  static std::string WardGroupName(int ward) {
    return "ward" + std::to_string(ward);
  }

  std::vector<int> StaffWithRole(const std::string& role) const;
  std::vector<int> ConsentedPatients() const;
  std::vector<int> ChronicPatients() const;
};

/// Generates the hospital schema and synthetic records, then builds the
/// experiment indexes and statistics:
///   Patients(id, mrn, ward, consent)            — dimension, unprotected
///   Staff(id, name, role, ward)                 — dimension, unprotected
///   Encounters(id, patient_id, staff_id, ward, enc_time, enc_date)
///   Diagnoses(id, encounter_id, patient_id, code, severity, diag_date)
/// Encounters and Diagnoses are the policy-protected relations (owner
/// column: patient_id). Encounters follow working-hours diurnal patterns;
/// the chronic cohort (config.chronic_fraction of patients) receives
/// config.chronic_visit_share of all visits.
class HospitalGenerator {
 public:
  explicit HospitalGenerator(HospitalConfig config = {}) : config_(config) {}

  Result<HospitalDataset> Populate(Database* db) const;

 private:
  HospitalConfig config_;
};

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_HOSPITAL_H_
