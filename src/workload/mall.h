#ifndef SIEVE_WORKLOAD_MALL_H_
#define SIEVE_WORKLOAD_MALL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "policy/policy_store.h"

namespace sieve {

/// Scale knobs for the synthetic Mall dataset (Section 7.1): shopping-mall
/// WiFi connectivity with shops as queriers. The paper's corpus is 1.7M
/// events / 2,651 customers / 35 shops / 19,364 policies.
struct MallConfig {
  int num_customers = 1500;
  int num_shops = 35;
  int num_days = 60;
  int target_events = 150000;
  std::string start_date = "2020-01-06";
  uint64_t seed = 1234;
};

struct MallDataset {
  MallConfig config;
  int64_t first_day = 0;
  std::vector<std::string> shop_types;      // per shop
  std::vector<bool> regular;                // per customer
  std::vector<int> favourite_shop;          // per customer
  std::vector<std::string> interests;       // per customer (shop type or "")
  std::vector<int64_t> sale_days;           // day offsets with sales
  size_t num_events = 0;

  static std::string ShopName(int shop) { return "shop" + std::to_string(shop); }
};

/// Creates the Mall schema (Table 3): Shops, Mall_Users, WiFi_Connectivity
/// (shop_id, owner, obs_time, obs_date), with indexes and statistics.
class MallGenerator {
 public:
  explicit MallGenerator(MallConfig config = {}) : config_(config) {}

  Result<MallDataset> Populate(Database* db) const;

 private:
  MallConfig config_;
};

/// Policy generation for the Mall dataset: regular customers grant their
/// most-visited shops access during opening hours; irregular customers grant
/// specific shops around sale days; interest-driven short grants model
/// lightning sales (Section 7.1).
class MallPolicyGenerator {
 public:
  explicit MallPolicyGenerator(uint64_t seed = 99) : seed_(seed) {}

  Result<size_t> Generate(const MallDataset& ds, PolicyStore* store) const;

 private:
  uint64_t seed_;
};

}  // namespace sieve

#endif  // SIEVE_WORKLOAD_MALL_H_
